"""Canonical instance cache: key canonicalization, replay, LRU, counters."""

import pytest

from repro.core.channel import channel_from_breaks
from repro.core.connection import ConnectionSet
from repro.core.routing import Routing
from repro.engine.cache import (
    InstanceCache,
    canonical_key,
    canonicalize_assignment,
    replay_assignment,
)
from repro.generators.paper_examples import fig3_channel, fig3_connections


def _fig3_key(k=1):
    return canonical_key(fig3_channel(), fig3_connections(), k, None, "auto")


class TestCanonicalKey:
    def test_same_instance_same_key(self):
        assert _fig3_key() == _fig3_key()

    def test_track_permutation_is_isomorphic(self):
        a = channel_from_breaks(9, [(2, 6), (3, 6), (5,)])
        b = channel_from_breaks(9, [(5,), (2, 6), (3, 6)])
        conns = ConnectionSet.from_spans([(1, 3), (4, 6)])
        assert canonical_key(a, conns, 1, None, "auto") == canonical_key(
            b, conns, 1, None, "auto"
        )

    def test_connection_names_are_ignored(self):
        ch = fig3_channel()
        named = ConnectionSet.from_spans([(1, 3), (4, 6)], prefix="x")
        renamed = ConnectionSet.from_spans([(1, 3), (4, 6)], prefix="y")
        assert canonical_key(ch, named, 1, None, "auto") == canonical_key(
            ch, renamed, 1, None, "auto"
        )

    def test_parameters_distinguish(self):
        ch, conns = fig3_channel(), fig3_connections()
        base = canonical_key(ch, conns, 1, None, "auto")
        assert canonical_key(ch, conns, 2, None, "auto") != base
        assert canonical_key(ch, conns, 1, "length", "auto") != base
        assert canonical_key(ch, conns, 1, None, "exact") != base

    def test_different_spans_distinguish(self):
        ch = fig3_channel()
        a = ConnectionSet.from_spans([(1, 3)])
        b = ConnectionSet.from_spans([(1, 4)])
        assert canonical_key(ch, a, 1, None, "auto") != canonical_key(
            ch, b, 1, None, "auto"
        )


class TestReplay:
    def test_round_trip_identity(self):
        ch = fig3_channel()
        assignment = (1, 2, 0, 2, 0)
        canon = canonicalize_assignment(ch, assignment)
        assert replay_assignment(ch, canon) == assignment

    def test_replay_onto_permuted_tracks_is_valid(self):
        a = channel_from_breaks(9, [(2, 6), (3, 6), (5,)])
        b = channel_from_breaks(9, [(5,), (3, 6), (2, 6)])
        conns = fig3_connections()
        routing_a = Routing(a, conns, (1, 2, 0, 2, 0))
        routing_a.validate(1)
        canon = canonicalize_assignment(a, routing_a.assignment)
        replayed = replay_assignment(b, canon)
        Routing(b, conns, replayed).validate(1)


class TestInstanceCache:
    def test_miss_then_hit(self):
        cache = InstanceCache()
        ch = fig3_channel()
        key = _fig3_key()
        assert cache.lookup(key, ch) is None
        cache.store(key, ch, (1, 2, 0, 2, 0))
        assert cache.lookup(key, ch) == (1, 2, 0, 2, 0)
        assert cache.hits == 1 and cache.misses == 1
        assert cache.hit_rate == 0.5

    def test_isomorphic_instance_hits(self):
        cache = InstanceCache()
        a = channel_from_breaks(9, [(2, 6), (3, 6), (5,)])
        b = channel_from_breaks(9, [(5,), (2, 6), (3, 6)])
        conns = fig3_connections()
        key_a = canonical_key(a, conns, 1, None, "auto")
        key_b = canonical_key(b, conns, 1, None, "auto")
        assert key_a == key_b
        cache.store(key_a, a, (1, 2, 0, 2, 0))
        replayed = cache.lookup(key_b, b)
        assert replayed is not None
        Routing(b, conns, replayed).validate(1)

    def test_lru_eviction(self):
        cache = InstanceCache(max_entries=2)
        ch = fig3_channel()
        keys = [_fig3_key(k) for k in (1, 2, 3)]
        for key in keys:
            cache.store(key, ch, (1, 2, 0, 2, 0))
        assert len(cache) == 2
        assert cache.lookup(keys[0], ch) is None  # evicted
        assert cache.lookup(keys[2], ch) is not None

    def test_clear(self):
        cache = InstanceCache()
        ch = fig3_channel()
        cache.store(_fig3_key(), ch, (1, 2, 0, 2, 0))
        cache.lookup(_fig3_key(), ch)
        cache.clear()
        assert len(cache) == 0 and cache.hits == 0 and cache.misses == 0

    def test_rejects_bad_size(self):
        with pytest.raises(ValueError):
            InstanceCache(max_entries=0)


class TestWeightTableKey:
    """Regression: custom weight tables must key the cache by their
    *values*, not just a spec name.  Before the fix, two same-geometry
    instances whose optima differ under different tables collided on one
    cache entry, so the second request replayed the first's (wrong)
    optimum."""

    def _instance(self):
        from repro.core.connection import Connection

        ch = channel_from_breaks(6, [(), ()])
        conns = ConnectionSet([Connection(1, 3, "a")])
        return ch, conns

    def _tables(self):
        from repro.engine import WeightTable

        # Track 1 cheap vs track 2 cheap: the optima differ.
        return WeightTable(((1.0, 5.0),)), WeightTable(((5.0, 1.0),))

    def test_different_tables_different_keys(self):
        ch, conns = self._instance()
        ta, tb = self._tables()
        assert canonical_key(ch, conns, None, ta, "dp") != canonical_key(
            ch, conns, None, tb, "dp"
        )

    def test_equal_tables_share_a_key(self):
        from repro.engine import WeightTable

        ch, conns = self._instance()
        ta = WeightTable(((1.0, 5.0),))
        tb = WeightTable(((1.0, 5.0),))
        assert canonical_key(ch, conns, None, ta, "dp") == canonical_key(
            ch, conns, None, tb, "dp"
        )

    def test_engine_returns_each_tables_own_optimum(self):
        """End-to-end: route the same geometry under table A then table B
        through one engine (shared cache); each result must be optimal
        for its *own* objective.  Fails on pre-fix code, where B is
        served A's cached assignment."""
        from repro.engine import RoutingEngine

        ch, conns = self._instance()
        ta, tb = self._tables()
        engine = RoutingEngine()
        ra = engine.route(ch, conns, weight=ta)
        rb = engine.route(ch, conns, weight=tb)
        assert ra.total_weight(ta.function(conns)) == 1.0
        assert rb.total_weight(tb.function(conns)) == 1.0
        assert ra.assignment != rb.assignment

    def test_table_shape_validated(self):
        from repro.engine import RoutingEngine, WeightTable

        ch, conns = self._instance()
        bad = WeightTable(((1.0,),))  # one column, channel has two tracks
        with pytest.raises(ValueError):
            RoutingEngine().route(ch, conns, weight=bad)


class TestMissAccounting:
    def _instance(self):
        return fig3_channel(), fig3_connections()

    def test_probe_mode_counts_no_miss(self):
        ch, conns = self._instance()
        cache = InstanceCache()
        key = canonical_key(ch, conns, 1, None, "auto")
        assert cache.lookup(key, ch, count_miss=False) is None
        assert (cache.hits, cache.misses) == (0, 0)
        # A hit in probe mode still counts as a hit.
        cache.store(key, ch, (1, 2, 0, 2, 0))
        assert cache.lookup(key, ch, count_miss=False) is not None
        assert (cache.hits, cache.misses) == (1, 0)

    def test_peek_counts_nothing(self):
        ch, conns = self._instance()
        cache = InstanceCache()
        key = canonical_key(ch, conns, 1, None, "auto")
        assert cache.peek(key, ch) is None
        cache.store(key, ch, (1, 2, 0, 2, 0))
        assert cache.peek(key, ch) is not None
        assert (cache.hits, cache.misses) == (0, 0)

    def test_engine_fastpath_miss_counted_once(self):
        """Regression: route_cached probe + full-path fallback used to
        count two misses for one missed request."""
        from repro.engine import RoutingEngine

        ch, conns = self._instance()
        engine = RoutingEngine()
        assert engine.route_cached(ch, conns, max_segments=1) is None
        assert engine.cache.misses == 0          # probe counts nothing
        engine.route(ch, conns, max_segments=1)
        assert engine.cache.misses == 1          # fallback counts once
        assert engine.route_cached(ch, conns, max_segments=1) is not None
        assert engine.cache.misses == 1          # hit adds no miss
        assert engine.cache.hits == 1

"""Persistent shared cache tier: validation, concurrency, restart reuse."""

import json
import os
import subprocess
import sys

import pytest

from repro.cli import main
from repro.core.errors import CacheCorruptionWarning
from repro.engine import EngineConfig, RoutingEngine
from repro.engine.cache import canonical_key
from repro.engine.cache_store import CacheStore, key_digest
from repro.generators.paper_examples import fig3_channel, fig3_connections


def _digest(n: int) -> str:
    return f"{n:064x}"


@pytest.fixture
def store_dir(tmp_path):
    return str(tmp_path / "cache")


class TestRoundTrip:
    def test_put_get(self, store_dir):
        with CacheStore(store_dir, refresh_interval_s=0.0) as store:
            store.put(_digest(1), (0, 1, 2))
            assert store.get(_digest(1)) == (0, 1, 2)
            assert store.get(_digest(2)) is None

    def test_survives_reopen(self, store_dir):
        with CacheStore(store_dir, refresh_interval_s=0.0) as store:
            for i in range(20):
                store.put(_digest(i), (i, i + 1))
        with CacheStore(store_dir, refresh_interval_s=0.0) as store:
            assert len(store) == 20
            for i in range(20):
                assert store.get(_digest(i)) == (i, i + 1)
            assert store.loads == 20

    def test_put_is_idempotent(self, store_dir):
        with CacheStore(store_dir, refresh_interval_s=0.0) as store:
            store.put(_digest(1), (3, 4))
            store.put(_digest(1), (3, 4))
            assert store.stores == 1
        with CacheStore(store_dir, refresh_interval_s=0.0) as store:
            assert store.loads == 1

    def test_key_digest_is_stable(self):
        key = canonical_key(
            fig3_channel(), fig3_connections(), 1, None, "auto"
        )
        assert key_digest(key) == key_digest(key)
        assert len(key_digest(key)) == 64

    def test_counters_snapshot(self, store_dir):
        with CacheStore(store_dir, refresh_interval_s=0.0) as store:
            store.put(_digest(1), (0,))
            store.get(_digest(1))
            counters = store.counters()
        assert counters["hits"] == 1
        assert counters["stores"] == 1
        assert counters["entries"] == 1

    def test_bad_params_rejected(self, store_dir):
        with pytest.raises(ValueError):
            CacheStore(store_dir, fsync_interval=0)
        with pytest.raises(ValueError):
            CacheStore(store_dir, compact_threshold=1)


def _segment_paths(store_dir):
    return sorted(
        os.path.join(store_dir, n)
        for n in os.listdir(store_dir)
        if n.startswith("seg-") and n.endswith(".jsonl")
    )


class TestCorruptionSemantics:
    def _write_store(self, store_dir, n=5):
        with CacheStore(store_dir, refresh_interval_s=0.0) as store:
            for i in range(n):
                store.put(_digest(i), (i,))
        [path] = _segment_paths(store_dir)
        return path

    def test_corrupt_record_mid_file_is_skipped(self, store_dir):
        path = self._write_store(store_dir)
        lines = open(path, "rb").read().splitlines(keepends=True)
        # Flip the middle record's checksum field content.
        lines[2] = lines[2].replace(b'"s":"', b'"s":"00', 1)
        with open(path, "wb") as fh:
            fh.writelines(lines)
        with pytest.warns(CacheCorruptionWarning):
            store = CacheStore(store_dir, refresh_interval_s=0.0)
        assert store.corrupt_records == 1
        assert store.get(_digest(2)) is None  # the corrupted one
        for i in (0, 1, 3, 4):                # everything else survives
            assert store.get(_digest(i)) == (i,)
        store.close()

    def test_unparseable_line_is_skipped(self, store_dir):
        path = self._write_store(store_dir)
        lines = open(path, "rb").read().splitlines(keepends=True)
        lines[1] = b"!!!! not json at all\n"
        with open(path, "wb") as fh:
            fh.writelines(lines)
        with pytest.warns(CacheCorruptionWarning):
            store = CacheStore(store_dir, refresh_interval_s=0.0)
        assert store.corrupt_records == 1
        assert len(store) == 4
        store.close()

    def test_torn_tail_is_ignored_not_corrupt(self, store_dir):
        path = self._write_store(store_dir)
        data = open(path, "rb").read()
        with open(path, "wb") as fh:
            fh.write(data[:-7])  # SIGKILL mid-append: no trailing newline
        store = CacheStore(store_dir, refresh_interval_s=0.0)
        # The torn line is neither loaded nor counted as corruption —
        # it could equally be another writer's append still in flight.
        assert store.corrupt_records == 0
        assert len(store) == 4
        store.close()

    def test_torn_tail_completes_on_later_refresh(self, store_dir):
        path = self._write_store(store_dir, n=2)
        data = open(path, "rb").read()
        with open(path, "wb") as fh:
            fh.write(data[:-7])
        store = CacheStore(store_dir, refresh_interval_s=0.0)
        assert len(store) == 1
        # The "in-flight" writer finishes its line: refresh resumes at
        # the consumed offset and picks up the completed record.
        with open(path, "ab") as fh:
            fh.write(data[-7:])
        assert store.get(_digest(1)) == (1,)
        store.close()


class TestMultiProcess:
    _WRITER = """
import sys
sys.path.insert(0, {src!r})
from repro.engine.cache_store import CacheStore
base, count = int(sys.argv[1]), int(sys.argv[2])
with CacheStore({cache_dir!r}, refresh_interval_s=0.0) as store:
    for i in range(base, base + count):
        store.put(f"{{i:064x}}", (i, i + 1))
"""

    def test_two_writers_one_reader_no_lost_entries(self, store_dir, tmp_path):
        src = os.path.join(
            os.path.dirname(__file__), os.pardir, os.pardir, "src"
        )
        script = self._WRITER.format(
            src=os.path.abspath(src), cache_dir=store_dir
        )
        os.makedirs(store_dir, exist_ok=True)
        procs = [
            subprocess.Popen([sys.executable, "-c", script, str(base), "40"])
            for base in (0, 40)
        ]
        reader = CacheStore(store_dir, refresh_interval_s=0.0)
        for proc in procs:
            assert proc.wait(timeout=60) == 0
        # Every entry from both writers, each exactly once, none mangled.
        seen = {}
        for i in range(80):
            value = reader.get(f"{i:064x}")
            assert value == (i, i + 1), f"entry {i} lost or mangled"
            seen[i] = value
        assert len(seen) == 80
        assert reader.corrupt_records == 0
        reader.close()


class TestCompaction:
    def test_compact_merges_segments(self, store_dir):
        for i in range(4):  # four writer lifetimes → four segment files
            with CacheStore(store_dir, refresh_interval_s=0.0) as store:
                store.put(_digest(i), (i,))
        assert len(_segment_paths(store_dir)) == 4
        store = CacheStore(store_dir, refresh_interval_s=0.0)
        assert store.compact() == 4
        assert store.compactions == 1
        assert len(_segment_paths(store_dir)) == 1
        for i in range(4):
            assert store.get(_digest(i)) == (i,)
        store.close()
        # A fresh loader sees the compacted view, nothing lost.
        with CacheStore(store_dir, refresh_interval_s=0.0) as store:
            assert len(store) == 4

    def test_put_triggers_compaction_over_threshold(self, store_dir):
        for i in range(4):
            with CacheStore(store_dir, refresh_interval_s=0.0) as store:
                store.put(_digest(i), (i,))
        store = CacheStore(
            store_dir, refresh_interval_s=0.0, compact_threshold=3
        )
        store.put(_digest(99), (9, 9))
        assert store.compactions >= 1
        assert len(_segment_paths(store_dir)) == 1
        store.close()
        with CacheStore(store_dir, refresh_interval_s=0.0) as store:
            assert len(store) == 5

    def test_writer_survives_concurrent_unlink(self, store_dir):
        """A writer whose segment was compacted away re-appends its own
        records — the no-lost-entries guarantee under compaction."""
        writer = CacheStore(store_dir, refresh_interval_s=0.0)
        writer.put(_digest(1), (1,))
        # Another process compacts: the writer's file is renamed away
        # (simulated by unlinking it directly).
        [path] = _segment_paths(store_dir)
        os.unlink(path)
        writer.put(_digest(2), (2,))
        writer.close()
        with CacheStore(store_dir, refresh_interval_s=0.0) as store:
            assert store.get(_digest(1)) == (1,)  # re-appended, not lost
            assert store.get(_digest(2)) == (2,)


class TestEngineIntegration:
    def test_restart_reuse_hits_persistent_cache(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        channel, conns = fig3_channel(), fig3_connections()
        with RoutingEngine(EngineConfig(cache_dir=cache_dir)) as first:
            solved = first.route(channel, conns, max_segments=1)
            assert first.cache_store.stores == 1
        # "Restarted process": a brand-new engine on the same directory
        # answers via the cache fast path without re-solving.
        with RoutingEngine(EngineConfig(cache_dir=cache_dir)) as second:
            fast = second.route_cached(channel, conns, max_segments=1)
            assert fast is not None and fast.cache_hit
            assert fast.routing.assignment == solved.assignment
            assert second.cache_store.hits == 1
            assert second.stats()["counters"]["cache.persist.hits"] == 1

    def test_close_closes_store(self, tmp_path):
        engine = RoutingEngine(
            EngineConfig(cache_dir=str(tmp_path / "cache"))
        )
        store = engine.cache_store
        engine.close()
        store.put(_digest(1), (0,))  # no-op after close, must not raise
        assert store.get(_digest(1)) is None

    def test_cache_dir_requires_cache(self, tmp_path):
        with pytest.raises(ValueError):
            EngineConfig(cache=False, cache_dir=str(tmp_path))


class TestCLIDigestParity:
    def test_batch_rerun_digest_identical_and_served_from_disk(
        self, tmp_path, capsys
    ):
        from repro.io.text_format import dump_instance

        inst = tmp_path / "fig3.sch"
        dump_instance(inst, fig3_channel(), fig3_connections())
        cache_dir = str(tmp_path / "cache")
        metrics = tmp_path / "metrics.json"

        argv = [
            "batch", str(inst), "--k", "1",
            "--cache-dir", cache_dir, "--format", "json",
        ]
        assert main(argv) == 0
        cold = json.loads(capsys.readouterr().out)
        assert main(argv + ["--metrics-out", str(metrics)]) == 0
        warm = json.loads(capsys.readouterr().out)

        assert warm["digest"] == cold["digest"]
        counters = json.loads(metrics.read_text())["counters"]
        assert counters["cache.persist.hits"] > 0

"""Chaos suite: end-to-end fault injection against the engine.

Run with ``pytest -m chaos`` (tier-1 excludes the marker; CI runs it in
a dedicated job).  Everything here is *deterministic* chaos: fault
decisions come from a seeded :class:`FaultPlan`, so each scenario
replays exactly and the central assertion — results bit-identical to a
fault-free run — is meaningful.

The acceptance scenario from the issue: a seeded plan injecting >= 10%
worker crashes and >= 5% hangs over a >= 50-instance mixed batch must
yield complete, validated, bit-identical results; and a batch SIGKILLed
mid-run with ``--checkpoint`` must, when resumed, produce the identical
final report while re-running only the un-journaled tasks.
"""

import json
import multiprocessing
import os
import re
import subprocess
import sys

import pytest

from repro.engine import EngineConfig, FaultPlan, RetryPolicy, RoutingEngine
from repro.engine.cache import canonical_key
from repro.generators.random_instances import (
    random_channel,
    random_feasible_instance,
)
from repro.io.results import result_stream_digest
from repro.io.text_format import dump_instance

pytestmark = pytest.mark.chaos

_HAS_FORK = "fork" in multiprocessing.get_all_start_methods()
needs_fork = pytest.mark.skipif(not _HAS_FORK, reason="needs fork start method")

#: Generous budgets: chaos tests assert *recovery*, not quarantine.
CHAOS_RETRY = RetryPolicy(
    max_attempts=10, max_worker_crashes=12, base_delay=0.01, max_delay=0.05
)


def chaos_corpus(n=50):
    """``n`` mixed feasible instances spanning channel shapes."""
    shapes = [(5, 20, 3.0), (6, 24, 4.0), (8, 32, 5.0), (4, 16, 2.5)]
    instances = []
    for i in range(n):
        tracks, columns, mean_seg = shapes[i % len(shapes)]
        channel = random_channel(tracks, columns, mean_seg, seed=1000 + i)
        conns = random_feasible_instance(
            channel, tracks + 2, seed=2000 + i, max_segments=2
        )
        instances.append((channel, conns))
    return instances


def task_keys(instances, k=2):
    return [
        repr(canonical_key(ch, conns, k, None, "auto"))
        for ch, conns in instances
    ]


def pick_seed(plan_of_seed, predicate, limit=500):
    """First fault-plan seed whose decision stream satisfies ``predicate``."""
    for seed in range(limit):
        if predicate(plan_of_seed(seed)):
            return seed
    raise AssertionError("no fault seed satisfies the scenario")


# ----------------------------------------------------------------------
# the acceptance scenario: >=10% crashes, >=5% hangs, 50 instances
# ----------------------------------------------------------------------
@needs_fork
def test_bit_identical_results_under_heavy_faults():
    instances = chaos_corpus(50)
    keys = task_keys(instances)
    plan_rates = dict(crash=0.15, hang=0.07, garbage=0.06, hang_seconds=30.0)

    def first_attempt_counts(plan):
        first = [plan.decide(k, 1) for k in keys]
        return first.count("crash"), first.count("hang")

    def heavy_enough(plan):
        n_crash, n_hang = first_attempt_counts(plan)
        # The issue demands >= 10% crashes and >= 5% hangs injected.
        return (n_crash >= 0.10 * len(keys)
                and n_hang >= 0.05 * len(keys))

    seed = pick_seed(
        lambda s: FaultPlan(seed=s, **plan_rates), heavy_enough
    )
    plan = FaultPlan(seed=seed, **plan_rates)

    baseline = RoutingEngine(EngineConfig(jobs=1)).route_many(
        instances, max_segments=2
    )
    assert all(r.ok for r in baseline)
    digest = result_stream_digest(baseline)

    engine = RoutingEngine(EngineConfig(
        jobs=2, retry=CHAOS_RETRY, fault_plan=plan, watchdog=0.8,
    ))
    results = engine.route_many(instances, max_segments=2)

    assert len(results) == len(instances)
    assert all(r.ok for r in results), [
        (r.index, r.error_type, r.error) for r in results if not r.ok
    ]
    for r in results:  # complete *and* independently validated
        assert r.routing.is_valid()
    assert result_stream_digest(results) == digest
    assert engine.metrics.counter("worker_crashes") > 0
    assert engine.metrics.counter("retries_total") > 0
    assert engine.metrics.counter("tasks_quarantined") == 0


@needs_fork
def test_hung_workers_are_detected_and_killed():
    """A hang is not a slow task: the watchdog must SIGKILL the worker."""
    instances = chaos_corpus(8)
    keys = task_keys(instances)

    def hangs_then_recovers(plan):
        hung = [k for k in keys if plan.decide(k, 1) == "hang"]
        return bool(hung) and all(plan.decide(k, 2) is None for k in hung)

    seed = pick_seed(
        lambda s: FaultPlan(hang=0.3, seed=s, hang_seconds=30.0),
        hangs_then_recovers,
    )
    plan = FaultPlan(hang=0.3, seed=seed, hang_seconds=30.0)

    baseline = RoutingEngine(EngineConfig(jobs=1)).route_many(
        instances, max_segments=2
    )
    engine = RoutingEngine(EngineConfig(
        jobs=2, retry=CHAOS_RETRY, fault_plan=plan, watchdog=0.8,
    ))
    results = engine.route_many(instances, max_segments=2)
    assert all(r.ok for r in results)
    assert result_stream_digest(results) == result_stream_digest(baseline)
    # Hung workers were killed by the watchdog, not waited out (the
    # injected hang sleeps 30s; the whole batch finishes in a few).
    assert engine.metrics.counter("workers_killed") > 0
    assert engine.metrics.counter("pool_rebuilds") > 0


# ----------------------------------------------------------------------
# SIGKILL-interrupted checkpoint/resume through the real CLI
# ----------------------------------------------------------------------
class TestCheckpointResumeAcrossSigkill:
    N_INSTANCES = 8
    KILL_AFTER = 4

    @pytest.fixture()
    def batch_dir(self, tmp_path):
        """A manifest of .sch instances on disk."""
        lines = []
        for i in range(self.N_INSTANCES):
            channel = random_channel(6, 24, 4.0, seed=300 + i)
            conns = random_feasible_instance(
                channel, 8, seed=400 + i, max_segments=2
            )
            path = tmp_path / f"inst{i}.sch"
            dump_instance(str(path), channel, conns)
            lines.append(json.dumps({"path": path.name, "k": 2}))
        (tmp_path / "manifest.jsonl").write_text("\n".join(lines) + "\n")
        return tmp_path

    def run_cli(self, batch_dir, *extra):
        src = os.path.abspath(
            os.path.join(os.path.dirname(__file__), "..", "..", "src")
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            [src] + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
        )
        return subprocess.run(
            [sys.executable, "-m", "repro", "batch",
             "--manifest", "manifest.jsonl", "--jobs", "1",
             "--format", "json", *extra],
            cwd=str(batch_dir), env=env, capture_output=True, text=True,
            timeout=300,
        )

    @staticmethod
    def semantic(report_json):
        """Batch report minus fields that legitimately vary across runs."""
        return [
            {k: v for k, v in record.items()
             if k not in ("duration", "algorithm", "cache_hit")}
            for record in json.loads(report_json)["results"]
        ]

    def test_interrupted_run_resumes_bit_identically(self, batch_dir):
        full = self.run_cli(batch_dir)
        assert full.returncode == 0, full.stderr

        interrupted = self.run_cli(
            batch_dir, "--checkpoint", "ckpt.jsonl", "--inject-faults",
            f"kill_after_checkpoints={self.KILL_AFTER},seed=3",
        )
        # The process SIGKILLed itself mid-batch: no report, no cleanup.
        assert interrupted.returncode == -9
        assert interrupted.stdout == ""
        journal = (batch_dir / "ckpt.jsonl").read_text().splitlines()
        assert len(journal) == self.KILL_AFTER

        resumed = self.run_cli(
            batch_dir, "--checkpoint", "ckpt.jsonl", "--resume", "--stats",
        )
        assert resumed.returncode == 0, resumed.stderr
        _, end = json.JSONDecoder().raw_decode(resumed.stdout)
        stats = resumed.stdout[end:]

        # Identical final report (modulo timings), produced by re-running
        # only the un-journaled tasks.
        assert self.semantic(resumed.stdout[:end]) == self.semantic(full.stdout)
        assert re.search(
            rf"checkpoint_records_skipped\s+{self.KILL_AFTER}\b", stats
        )
        remaining = self.N_INSTANCES - self.KILL_AFTER
        assert re.search(
            rf"checkpoint_records_written\s+{remaining}\b", stats
        )
        journal = (batch_dir / "ckpt.jsonl").read_text().splitlines()
        assert len(journal) == self.N_INSTANCES

    def test_resume_of_complete_journal_runs_nothing(self, batch_dir):
        first = self.run_cli(batch_dir, "--checkpoint", "ckpt.jsonl")
        assert first.returncode == 0, first.stderr
        again = self.run_cli(
            batch_dir, "--checkpoint", "ckpt.jsonl", "--resume", "--stats",
        )
        assert again.returncode == 0, again.stderr
        _, end_a = json.JSONDecoder().raw_decode(again.stdout)
        _, end_f = json.JSONDecoder().raw_decode(first.stdout)
        assert self.semantic(again.stdout[:end_a]) == self.semantic(
            first.stdout[:end_f]
        )
        assert re.search(
            rf"checkpoint_records_skipped\s+{self.N_INSTANCES}\b",
            again.stdout,
        )
        assert "checkpoint_records_written" not in again.stdout


# ----------------------------------------------------------------------
# sequential chaos (no pool): same guarantees, simulated faults
# ----------------------------------------------------------------------
def test_sequential_chaos_bit_identical():
    instances = chaos_corpus(50)
    baseline = RoutingEngine(EngineConfig(jobs=1)).route_many(
        instances, max_segments=2
    )
    engine = RoutingEngine(EngineConfig(
        jobs=1, retry=CHAOS_RETRY,
        fault_plan=FaultPlan(crash=0.15, hang=0.07, garbage=0.06, seed=21),
    ))
    results = engine.route_many(instances, max_segments=2)
    assert all(r.ok for r in results)
    assert result_stream_digest(results) == result_stream_digest(baseline)
    assert engine.metrics.counter("retries_total") > 0

"""Engine metrics registry: counters, histograms, snapshots."""

from repro.engine.metrics import Metrics


class TestCounters:
    def test_incr_and_read(self):
        m = Metrics()
        m.incr("requests")
        m.incr("requests", 2)
        assert m.counter("requests") == 3
        assert m.counter("never") == 0

    def test_hit_rate_derived(self):
        m = Metrics()
        m.incr("cache.hits", 9)
        m.incr("cache.misses", 1)
        assert m.snapshot()["derived"]["cache.hit_rate"] == 0.9

    def test_no_hit_rate_without_lookups(self):
        assert "cache.hit_rate" not in Metrics().snapshot()["derived"]


class TestHistograms:
    def test_observe_summary(self):
        m = Metrics()
        for v in (1.0, 2.0, 3.0, 4.0):
            m.observe("latency.dp", v)
        h = m.snapshot()["histograms"]["latency.dp"]
        assert h["count"] == 4
        assert h["total"] == 10.0
        assert h["mean"] == 2.5
        assert h["min"] == 1.0 and h["max"] == 4.0
        assert h["p50"] == 2.5

    def test_window_bounded(self):
        m = Metrics()
        for i in range(10_000):
            m.observe("x", float(i))
        h = m.snapshot()["histograms"]["x"]
        assert h["count"] == 10_000  # totals stay exact
        assert h["max"] == 9999.0

    def test_reset(self):
        m = Metrics()
        m.incr("a")
        m.observe("b", 1.0)
        m.reset()
        snap = m.snapshot()
        assert snap["counters"] == {} and snap["histograms"] == {}


class TestRender:
    def test_render_mentions_counters_and_latency(self):
        m = Metrics()
        m.incr("cache.hits")
        m.incr("cache.misses")
        m.observe("latency.auto", 0.01)
        text = m.render()
        assert "cache.hits" in text
        assert "latency.auto" in text
        assert "cache.hit_rate" in text


class TestDpNodesPruned:
    """The packed kernel's pruning counter flows into engine metrics."""

    def _pruning_instance(self):
        import random

        from repro.core.connection import Connection, ConnectionSet
        from repro.core.kernels import run_dp_packed
        from repro.generators.random_instances import random_channel

        rng = random.Random(0)
        for trial in range(200):
            ch = random_channel(5, 60, 3.0, seed=trial)
            conns = []
            for j in range(10):
                left = rng.randint(1, 55)
                right = rng.randint(left + 1, min(60, left + 6))
                conns.append(Connection(left, right, f"c{j}"))
            cs = ConnectionSet(conns)
            try:
                _, stats = run_dp_packed(ch, cs)
            except Exception:
                continue
            if stats.total_pruned:
                return ch, cs, stats.total_pruned
        raise AssertionError("no pruning instance found")

    def test_engine_route_increments_counter(self):
        from repro.engine import EngineConfig, RoutingEngine

        ch, cs, expected = self._pruning_instance()
        engine = RoutingEngine(EngineConfig(cache=False))
        engine.route(ch, cs, algorithm="dp")
        assert engine.metrics.counter("dp_nodes_pruned") == expected

    def test_outcome_carries_pruned_across_deadline_child(self):
        from repro.engine.executor import RouteTask, run_task

        ch, cs, expected = self._pruning_instance()
        # timeout forces the forked-child path: the count crosses the pipe.
        outcome = run_task(RouteTask(
            index=0, channel=ch, connections=cs, algorithm="dp", timeout=30.0,
        ))
        assert outcome.ok
        assert outcome.dp_nodes_pruned == expected

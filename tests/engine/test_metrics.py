"""Engine metrics registry: counters, histograms, snapshots."""

from repro.engine.metrics import Metrics


class TestCounters:
    def test_incr_and_read(self):
        m = Metrics()
        m.incr("requests")
        m.incr("requests", 2)
        assert m.counter("requests") == 3
        assert m.counter("never") == 0

    def test_hit_rate_derived(self):
        m = Metrics()
        m.incr("cache.hits", 9)
        m.incr("cache.misses", 1)
        assert m.snapshot()["derived"]["cache.hit_rate"] == 0.9

    def test_no_hit_rate_without_lookups(self):
        assert "cache.hit_rate" not in Metrics().snapshot()["derived"]


class TestHistograms:
    def test_observe_summary(self):
        m = Metrics()
        for v in (1.0, 2.0, 3.0, 4.0):
            m.observe("latency.dp", v)
        h = m.snapshot()["histograms"]["latency.dp"]
        assert h["count"] == 4
        assert h["total"] == 10.0
        assert h["mean"] == 2.5
        assert h["min"] == 1.0 and h["max"] == 4.0
        assert h["p50"] == 2.5

    def test_window_bounded(self):
        m = Metrics()
        for i in range(10_000):
            m.observe("x", float(i))
        h = m.snapshot()["histograms"]["x"]
        assert h["count"] == 10_000  # totals stay exact
        assert h["max"] == 9999.0

    def test_reset(self):
        m = Metrics()
        m.incr("a")
        m.observe("b", 1.0)
        m.reset()
        snap = m.snapshot()
        assert snap["counters"] == {} and snap["histograms"] == {}


class TestRender:
    def test_render_mentions_counters_and_latency(self):
        m = Metrics()
        m.incr("cache.hits")
        m.incr("cache.misses")
        m.observe("latency.auto", 0.01)
        text = m.render()
        assert "cache.hits" in text
        assert "latency.auto" in text
        assert "cache.hit_rate" in text

"""Engine metrics registry: counters, histograms, snapshots."""

import threading

from repro.engine.metrics import _RESERVOIR_SIZE, Metrics


class TestCounters:
    def test_incr_and_read(self):
        m = Metrics()
        m.incr("requests")
        m.incr("requests", 2)
        assert m.counter("requests") == 3
        assert m.counter("never") == 0

    def test_hit_rate_derived(self):
        m = Metrics()
        m.incr("cache.hits", 9)
        m.incr("cache.misses", 1)
        assert m.snapshot()["derived"]["cache.hit_rate"] == 0.9

    def test_no_hit_rate_without_lookups(self):
        assert "cache.hit_rate" not in Metrics().snapshot()["derived"]


class TestHistograms:
    def test_observe_summary(self):
        m = Metrics()
        for v in (1.0, 2.0, 3.0, 4.0):
            m.observe("latency.dp", v)
        h = m.snapshot()["histograms"]["latency.dp"]
        assert h["count"] == 4
        assert h["total"] == 10.0
        assert h["mean"] == 2.5
        assert h["min"] == 1.0 and h["max"] == 4.0
        assert h["p50"] == 2.5

    def test_window_bounded(self):
        m = Metrics()
        for i in range(10_000):
            m.observe("x", float(i))
        h = m.snapshot()["histograms"]["x"]
        assert h["count"] == 10_000  # totals stay exact
        assert h["max"] == 9999.0

    def test_quantiles_unbiased_over_whole_stream(self):
        """Regression: the old halving window kept only the most recent
        burst, so 3x4096 zeros followed by 4096 ones reported p50 = 1.0
        — the long steady phase was erased.  The whole-stream reservoir
        keeps ~25% ones, so the median stays at the majority value while
        p95 still sees the burst."""
        m = Metrics()
        for _ in range(3 * _RESERVOIR_SIZE):
            m.observe("drift", 0.0)
        for _ in range(_RESERVOIR_SIZE):
            m.observe("drift", 1.0)
        h = m.snapshot()["histograms"]["drift"]
        assert h["count"] == 4 * _RESERVOIR_SIZE
        assert h["mean"] == 0.25
        assert h["p50"] < 0.5  # pre-fix: 1.0 (zeros phase erased)
        assert h["p95"] == 1.0  # the burst is still represented

    def test_reservoir_memory_bounded(self):
        m = Metrics()
        for i in range(10 * _RESERVOIR_SIZE):
            m.observe("x", float(i))
        hist = m._histograms["x"]
        assert len(hist.reservoir) == _RESERVOIR_SIZE
        assert hist.count == 10 * _RESERVOIR_SIZE

    def test_exact_quantiles_below_reservoir_bound(self):
        m = Metrics()
        for i in range(101):
            m.observe("x", float(i))
        h = m.snapshot()["histograms"]["x"]
        assert h["p50"] == 50.0
        assert h["p95"] == 95.0

    def test_snapshots_deterministic_for_same_stream(self):
        def run():
            m = Metrics()
            for i in range(3 * _RESERVOIR_SIZE):
                m.observe("latency.dp", float(i % 997))
            return m.snapshot()

        assert run() == run()

    def test_reset(self):
        m = Metrics()
        m.incr("a")
        m.observe("b", 1.0)
        m.reset()
        snap = m.snapshot()
        assert snap["counters"] == {} and snap["histograms"] == {}


class TestConcurrency:
    """The registry's invariants hold under concurrent recording."""

    def test_counters_and_histograms_under_threads(self):
        m = Metrics()
        n_threads, per_thread = 8, 500

        def work(tid):
            for i in range(per_thread):
                m.incr("requests")
                m.observe("latency.auto", float(tid * per_thread + i))

        threads = [
            threading.Thread(target=work, args=(t,)) for t in range(n_threads)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        expected = n_threads * per_thread
        assert m.counter("requests") == expected
        h = m.snapshot()["histograms"]["latency.auto"]
        assert h["count"] == expected
        assert h["min"] == 0.0 and h["max"] == float(expected - 1)

    def test_concurrent_route_many_counts_every_request(self):
        """Counters stay monotone and the latency histogram records one
        observation per completed request when route_many batches run
        from several threads against one engine."""
        from repro.engine import EngineConfig, RoutingEngine
        from repro.generators.random_instances import (
            random_channel,
            random_feasible_instance,
        )

        engine = RoutingEngine(EngineConfig(jobs=1, cache=False))
        batches = []
        for b in range(3):
            batch = []
            for i in range(4):
                ch = random_channel(4, 20, 4.0, seed=10 * b + i)
                batch.append(
                    (ch, random_feasible_instance(ch, 5, seed=50 + 10 * b + i))
                )
            batches.append(batch)

        errors = []

        def run(batch):
            try:
                engine.route_many(batch)
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=run, args=(b,)) for b in batches]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        total = sum(len(b) for b in batches)
        assert engine.metrics.counter("requests") == total
        snap = engine.stats()
        observed = sum(
            h["count"] for name, h in snap["histograms"].items()
            if name.startswith("latency.")
        )
        assert observed == total


class TestRender:
    def test_render_mentions_counters_and_latency(self):
        m = Metrics()
        m.incr("cache.hits")
        m.incr("cache.misses")
        m.observe("latency.auto", 0.01)
        text = m.render()
        assert "cache.hits" in text
        assert "latency.auto" in text
        assert "cache.hit_rate" in text


class TestDpNodesPruned:
    """The packed kernel's pruning counter flows into engine metrics."""

    def _pruning_instance(self):
        import random

        from repro.core.connection import Connection, ConnectionSet
        from repro.core.kernels import run_dp_packed
        from repro.generators.random_instances import random_channel

        rng = random.Random(0)
        for trial in range(200):
            ch = random_channel(5, 60, 3.0, seed=trial)
            conns = []
            for j in range(10):
                left = rng.randint(1, 55)
                right = rng.randint(left + 1, min(60, left + 6))
                conns.append(Connection(left, right, f"c{j}"))
            cs = ConnectionSet(conns)
            try:
                _, stats = run_dp_packed(ch, cs)
            except Exception:
                continue
            if stats.total_pruned:
                return ch, cs, stats.total_pruned
        raise AssertionError("no pruning instance found")

    def test_engine_route_increments_counter(self):
        from repro.engine import EngineConfig, RoutingEngine

        ch, cs, expected = self._pruning_instance()
        engine = RoutingEngine(EngineConfig(cache=False))
        engine.route(ch, cs, algorithm="dp")
        assert engine.metrics.counter("dp_nodes_pruned") == expected

    def test_outcome_carries_pruned_across_deadline_child(self):
        from repro.engine.executor import RouteTask, run_task

        ch, cs, expected = self._pruning_instance()
        # timeout forces the forked-child path: the count crosses the pipe.
        outcome = run_task(RouteTask(
            index=0, channel=ch, connections=cs, algorithm="dp", timeout=30.0,
        ))
        assert outcome.ok
        assert outcome.dp_nodes_pruned == expected

"""RoutingEngine: batch equivalence, caching, deadlines, degradation,
portfolio racing, and determinism across worker counts."""

import multiprocessing
import time

import pytest

from repro.core.api import route
from repro.core.channel import channel_from_breaks, unsegmented_channel
from repro.core.connection import ConnectionSet
from repro.core.errors import EngineTimeout, RoutingInfeasibleError
from repro.core.npc import build_two_segment_instance, normalize_nmts
from repro.engine import EngineConfig, RoutingEngine, select_candidates
from repro.generators.paper_examples import (
    example1_nmts,
    fig3_channel,
    fig3_connections,
    fig8_channel,
    fig8_connections,
)
from repro.generators.random_instances import (
    random_channel,
    random_feasible_instance,
)

_HAS_FORK = "fork" in multiprocessing.get_all_start_methods()


def paper_corpus():
    """Feasible (channel, connections) pairs from the paper's examples
    plus small random instances."""
    instances = [
        (fig3_channel(), fig3_connections()),
        (fig8_channel(), fig8_connections()),
    ]
    for seed in range(6):
        channel = random_channel(6, 30, 5.0, seed=seed)
        conns = random_feasible_instance(channel, 8, seed=seed + 50)
        instances.append((channel, conns))
    return instances


def adversarial_instance():
    """The Theorem-2 reduction of the paper's Example-1 NMTS problem:
    exact routing is exponential by construction."""
    norm, _, _ = normalize_nmts(example1_nmts())
    built = build_two_segment_instance(norm)
    return built.channel, built.connections


class TestRouteMany:
    def test_matches_sequential_core_route(self):
        engine = RoutingEngine()
        instances = paper_corpus()
        results = engine.route_many(instances, jobs=1)
        assert all(r.ok for r in results)
        for (channel, conns), r in zip(instances, results):
            expected = route(channel, conns)
            assert r.routing.assignment == expected.assignment

    def test_parallel_equals_sequential(self):
        instances = paper_corpus()
        sequential = RoutingEngine().route_many(instances, jobs=1)
        parallel = RoutingEngine().route_many(instances, jobs=2)
        assert all(r.ok for r in parallel)
        for a, b in zip(sequential, parallel):
            assert a.routing.assignment == b.routing.assignment

    def test_results_in_input_order(self):
        engine = RoutingEngine()
        results = engine.route_many(paper_corpus(), jobs=2)
        assert [r.index for r in results] == list(range(len(results)))

    def test_all_results_validate(self):
        engine = RoutingEngine()
        for r in engine.route_many(paper_corpus(), jobs=2):
            assert r.routing.is_valid()

    def test_per_instance_max_segments(self):
        engine = RoutingEngine()
        instances = [(fig3_channel(), fig3_connections())] * 2
        results = engine.route_many(instances, max_segments=[1, 2])
        assert all(r.ok for r in results)
        assert results[0].routing.max_segments_used() == 1

    def test_max_segments_length_mismatch(self):
        engine = RoutingEngine()
        with pytest.raises(ValueError):
            engine.route_many(
                [(fig3_channel(), fig3_connections())], max_segments=[1, 2]
            )

    def test_infeasible_instance_does_not_sink_batch(self):
        # An unsegmented single track cannot carry two overlapping spans.
        bad = (
            unsegmented_channel(1, 6),
            ConnectionSet.from_spans([(1, 3), (2, 5)]),
        )
        engine = RoutingEngine()
        results = engine.route_many([bad, (fig3_channel(), fig3_connections())])
        assert not results[0].ok
        assert results[0].error_type == "RoutingInfeasibleError"
        assert results[1].ok

    def test_weighted_batch(self):
        engine = RoutingEngine()
        results = engine.route_many(
            [(fig3_channel(), fig3_connections())],
            max_segments=1, weight="length",
        )
        assert results[0].ok
        assert results[0].routing.is_valid(1)

    def test_callable_weight_rejected(self):
        engine = RoutingEngine()
        with pytest.raises(ValueError, match="weight"):
            engine.route_many(
                [(fig3_channel(), fig3_connections())], weight="bogus"
            )


class TestCacheBehaviour:
    def test_repeated_corpus_hits(self):
        engine = RoutingEngine()
        instances = paper_corpus()
        first = engine.route_many(instances, jobs=1)
        second = engine.route_many(instances, jobs=1)
        assert all(r.cache_hit for r in second)
        assert all(
            a.routing.assignment == b.routing.assignment
            for a, b in zip(first, second)
        )
        stats = engine.stats()
        assert stats["derived"]["cache.hit_rate"] >= 0.5
        assert stats["counters"]["cache.hits"] == len(instances)

    def test_repeat_hit_rate_exceeds_90_percent(self):
        # The acceptance shape: a corpus routed twice must show >= 90%
        # hits on the second pass (here: 100%).
        engine = RoutingEngine()
        instances = paper_corpus()
        engine.route_many(instances, jobs=1)
        engine.reset_stats()
        second = engine.route_many(instances, jobs=1)
        assert all(r.cache_hit for r in second)
        assert engine.stats()["derived"]["cache.hit_rate"] >= 0.9

    def test_isomorphic_instance_hits(self):
        a = channel_from_breaks(9, [(2, 6), (3, 6), (5,)])
        b = channel_from_breaks(9, [(5,), (2, 6), (3, 6)])  # permuted tracks
        conns_a = fig3_connections()
        conns_b = ConnectionSet.from_spans(
            [(c.left, c.right) for c in conns_a], prefix="renamed"
        )
        engine = RoutingEngine()
        engine.route(a, conns_a, max_segments=1)
        routing = engine.route(b, conns_b, max_segments=1)
        assert engine.stats()["counters"]["cache.hits"] == 1
        routing.validate(1)

    def test_intra_batch_duplicates_served_once(self):
        engine = RoutingEngine()
        instances = [(fig3_channel(), fig3_connections())] * 5
        results = engine.route_many(instances, jobs=1)
        assert all(r.ok for r in results)
        assert sum(1 for r in results if r.cache_hit) == 4
        assert engine.stats()["counters"]["cache.hits"] == 4

    def test_cache_disabled(self):
        engine = RoutingEngine(EngineConfig(cache=False))
        instances = [(fig3_channel(), fig3_connections())]
        engine.route_many(instances)
        second = engine.route_many(instances)
        assert not second[0].cache_hit


class TestDeterminism:
    def test_jobs_do_not_change_results(self):
        instances = paper_corpus()
        baseline = None
        for jobs in (1, 2, 4):
            engine = RoutingEngine(EngineConfig(seed=42))
            assignments = [
                r.routing.assignment
                for r in engine.route_many(instances, jobs=jobs)
            ]
            if baseline is None:
                baseline = assignments
            else:
                assert assignments == baseline


class TestDeadlines:
    def test_adversarial_instance_never_hangs(self):
        channel, conns = adversarial_instance()
        engine = RoutingEngine()
        start = time.monotonic()
        try:
            routing = engine.route(
                channel, conns, max_segments=2, algorithm="exact",
                timeout=1.0,
            )
            routing.validate(2)  # degraded but valid
        except EngineTimeout:
            pass  # equally acceptable: typed timeout, no hang
        assert time.monotonic() - start < 20.0

    def test_timeout_counted_in_stats(self):
        channel, conns = adversarial_instance()
        engine = RoutingEngine()
        try:
            engine.route(
                channel, conns, max_segments=2, algorithm="exact",
                timeout=0.3,
            )
        except EngineTimeout:
            pass
        assert engine.stats()["counters"]["timeouts"] >= 1

    def test_generous_deadline_is_invisible(self):
        engine = RoutingEngine()
        routing = engine.route(
            fig3_channel(), fig3_connections(), max_segments=1, timeout=30.0
        )
        routing.validate(1)
        assert engine.stats()["counters"].get("timeouts", 0) == 0

    @pytest.mark.skipif(not _HAS_FORK, reason="degradation fake needs fork")
    def test_degrades_to_ladder_on_primary_timeout(self, monkeypatch):
        # Make the exact solver hang; the fork-based deadline child
        # inherits the patch, so "exact" times out and the engine must
        # fall back to the ladder and still return a valid routing.
        def hang(*args, **kwargs):
            time.sleep(60)

        monkeypatch.setattr("repro.core.api.route_exact", hang)
        engine = RoutingEngine(EngineConfig(ladder=("greedy1",)))
        routing = engine.route(
            fig3_channel(), fig3_connections(), max_segments=1,
            algorithm="exact", timeout=2.0,
        )
        routing.validate(1)
        counters = engine.stats()["counters"]
        assert counters["timeouts"] == 1
        assert counters["fallbacks"] == 1

    def test_batch_timeout_reports_not_raises(self):
        channel, conns = adversarial_instance()
        engine = RoutingEngine()
        results = engine.route_many(
            [(channel, conns), (fig3_channel(), fig3_connections())],
            max_segments=2, algorithm="exact", timeout=0.5, jobs=1,
        )
        assert results[1].ok
        first = results[0]
        assert first.ok or first.error_type == "EngineTimeout"
        assert first.timed_out or first.ok


class TestPortfolio:
    def test_candidates_follow_shape(self):
        assert select_candidates(
            fig3_channel(), fig3_connections(), 1, None
        ) == ("greedy1", "matching")
        identical = channel_from_breaks(8, [(4,), (4,)])
        conns = ConnectionSet.from_spans([(1, 3)])
        assert select_candidates(identical, conns, None, None)[0] == "left_edge"
        assert 2 <= len(select_candidates(
            fig3_channel(), fig3_connections(), None, "length"
        )) <= 3

    def test_race_returns_valid_routing(self):
        engine = RoutingEngine()
        routing = engine.route(
            fig3_channel(), fig3_connections(), max_segments=1,
            portfolio=True,
        )
        routing.validate(1)
        assert engine.stats()["counters"]["races"] == 1

    def test_race_weighted_picks_minimum(self):
        from repro.core.routing import occupied_length_weight

        engine = RoutingEngine()
        routing = engine.route(
            fig3_channel(), fig3_connections(), max_segments=1,
            weight="length", portfolio=True,
        )
        # K=1, length weight: must match the matching algorithm's optimum.
        w = occupied_length_weight(fig3_channel())
        expected = route(
            fig3_channel(), fig3_connections(), max_segments=1,
            weight=w, algorithm="matching",
        )
        assert routing.total_weight(w) == expected.total_weight(w)

    def test_race_infeasible_raises(self):
        engine = RoutingEngine()
        with pytest.raises(RoutingInfeasibleError):
            engine.route(
                unsegmented_channel(1, 6),
                ConnectionSet.from_spans([(1, 3), (2, 5)]),
                portfolio=True,
            )

    @pytest.mark.skipif(not _HAS_FORK, reason="slow-candidate fake needs fork")
    def test_race_cancels_losers(self, monkeypatch):
        def hang(*args, **kwargs):
            time.sleep(60)

        monkeypatch.setattr("repro.core.api.route_exact_optimal", hang)
        engine = RoutingEngine()
        start = time.monotonic()
        # Weighted race: waits out the deadline for the hung candidate,
        # then returns the best finished routing and cancels the rest.
        routing = engine.route(
            fig3_channel(), fig3_connections(), max_segments=1,
            weight="length", portfolio=True, timeout=2.0,
        )
        assert time.monotonic() - start < 8.0
        routing.validate(1)
        assert engine.stats()["counters"]["cancelled"] >= 1


class TestSingleRoute:
    def test_route_raises_typed_errors(self):
        engine = RoutingEngine()
        with pytest.raises(RoutingInfeasibleError):
            engine.route(
                unsegmented_channel(1, 6),
                ConnectionSet.from_spans([(1, 3), (2, 5)]),
            )

    def test_unknown_algorithm_rejected(self):
        engine = RoutingEngine()
        with pytest.raises(ValueError):
            engine.route(fig3_channel(), fig3_connections(), algorithm="nope")

    def test_module_level_convenience(self):
        from repro.engine import reset_stats, route_many, stats

        reset_stats()
        results = route_many([(fig3_channel(), fig3_connections())])
        assert results[0].ok
        assert stats()["counters"]["requests"] >= 1

    def test_core_api_reexport(self):
        from repro.core.api import engine_stats, route_many

        assert callable(route_many) and callable(engine_stats)

"""Concurrent ``route_many`` calls against one shared engine.

The serving layer funnels traffic through one dispatch thread, but the
engine's contract is broader: it is safe to share across threads.  These
tests hammer one engine from many threads and assert the shared state —
metrics counters, the canonical cache, and trace collection — stays
consistent.
"""

import threading

from repro.io.results import result_stream_digest
from repro.obs.report import build_traces
from repro.obs.trace import ListTraceSink
from repro.engine import EngineConfig, RoutingEngine
from repro.serve.loadgen import build_corpus

N_THREADS = 4
N_ROUNDS = 3


def _hammer(engine, corpus, rounds=N_ROUNDS, threads=N_THREADS):
    """Run route_many from many threads; return per-thread digests."""
    instances = [(c, s) for c, s, _ in corpus]
    ks = [k for _, _, k in corpus]
    digests: list[list[str]] = [[] for _ in range(threads)]
    errors: list[BaseException] = []
    barrier = threading.Barrier(threads)

    def work(slot: int) -> None:
        try:
            barrier.wait(timeout=30)
            for _ in range(rounds):
                results = engine.route_many(instances, max_segments=ks)
                digests[slot].append(result_stream_digest(results))
        except BaseException as exc:  # noqa: BLE001 - surfaced below
            errors.append(exc)

    workers = [
        threading.Thread(target=work, args=(i,)) for i in range(threads)
    ]
    for w in workers:
        w.start()
    for w in workers:
        w.join(timeout=120)
    assert not errors, errors
    return digests


def test_concurrent_batches_identical_results():
    corpus = build_corpus(6, seed=61)
    engine = RoutingEngine(EngineConfig(seed=61))
    digests = _hammer(engine, corpus)
    flat = {d for per_thread in digests for d in per_thread}
    assert len(flat) == 1  # every thread, every round: the same answer
    assert all(len(d) == N_ROUNDS for d in digests)


def test_concurrent_batches_metrics_consistent():
    corpus = build_corpus(5, seed=62)
    engine = RoutingEngine(EngineConfig(seed=62))
    _hammer(engine, corpus)
    snap = engine.stats()
    total = N_THREADS * N_ROUNDS * len(corpus)
    assert snap["counters"]["requests"] == total
    # Every request either hit or missed the cache; no increments lost.
    hits = snap["counters"].get("cache.hits", 0)
    misses = snap["counters"].get("cache.misses", 0)
    assert hits + misses == total
    # Each distinct instance is solved at most once per interleaving
    # epoch; with one shared cache the misses stay near the corpus size.
    assert misses >= len(corpus)
    assert hits >= total - N_THREADS * len(corpus)


def test_concurrent_batches_cache_serves_all_threads():
    corpus = build_corpus(4, seed=63)
    engine = RoutingEngine(EngineConfig(seed=63))
    # Warm the cache single-threaded, then hammer: everything must hit.
    instances = [(c, s) for c, s, _ in corpus]
    ks = [k for _, _, k in corpus]
    engine.route_many(instances, max_segments=ks)
    engine.reset_stats()
    _hammer(engine, corpus)
    snap = engine.stats()
    total = N_THREADS * N_ROUNDS * len(corpus)
    assert snap["counters"]["requests"] == total
    assert snap["counters"]["cache.hits"] == total
    assert snap["counters"].get("cache.misses", 0) == 0


def test_concurrent_batches_trace_trees_stay_connected():
    corpus = build_corpus(3, seed=64)
    sink = ListTraceSink()
    engine = RoutingEngine(EngineConfig(seed=64), trace_sink=sink)
    _hammer(engine, corpus, rounds=2, threads=3)
    traces = build_traces(sink.spans)
    # One trace per request; interleaved writers must not corrupt trees.
    assert len(traces) == 3 * 2 * len(corpus)
    for trace in traces.values():
        trace.validate()
        assert trace.root["name"] == "request"

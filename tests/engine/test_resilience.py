"""Resilience layer: retry policy, fault plans, checkpoint journal,
sequential fault recovery, supervised pool recovery, manifest errors.

Fast deterministic coverage for tier-1; the heavyweight end-to-end
chaos scenarios (high fault rates over a large corpus, SIGKILLed CLI
runs) live in ``test_chaos.py`` behind the ``chaos`` marker.
"""

import argparse
import multiprocessing

import pytest

from repro.core.errors import (
    CheckpointError,
    FormatError,
    ManifestError,
    TaskQuarantinedError,
    ValidationError,
)
from repro.core.routing import Routing
from repro.engine import EngineConfig, RoutingEngine
from repro.engine.cache import canonical_key
from repro.engine.resilience import (
    CheckpointJournal,
    FaultPlan,
    RetryPolicy,
    backoff_delay,
    corrupt_assignment,
    record_key,
)
from repro.generators.random_instances import (
    random_channel,
    random_feasible_instance,
)
from repro.io.results import result_stream_digest

_HAS_FORK = "fork" in multiprocessing.get_all_start_methods()

#: Fast backoff so retry-heavy tests do not sleep their way to a minute.
FAST_RETRY = RetryPolicy(
    max_attempts=6, max_worker_crashes=8, base_delay=0.001, max_delay=0.01
)


def small_corpus(n=8):
    instances = []
    for i in range(n):
        channel = random_channel(6, 24, 4.0, seed=100 + i)
        conns = random_feasible_instance(channel, 8, seed=200 + i,
                                         max_segments=2)
        instances.append((channel, conns))
    return instances


def corpus_task_keys(instances, k=2):
    return [
        repr(canonical_key(ch, conns, k, None, "auto"))
        for ch, conns in instances
    ]


# ----------------------------------------------------------------------
# RetryPolicy / backoff
# ----------------------------------------------------------------------
class TestRetryPolicy:
    def test_defaults_valid(self):
        policy = RetryPolicy()
        assert policy.max_attempts >= 1
        assert policy.is_retryable("WorkerCrashError")
        assert policy.is_retryable("ValidationError")
        assert not policy.is_retryable("RoutingInfeasibleError")
        assert not policy.is_retryable("EngineTimeout")

    @pytest.mark.parametrize("kwargs", [
        {"max_attempts": 0},
        {"max_worker_crashes": 0},
        {"base_delay": -1.0},
        {"multiplier": 0.5},
        {"jitter": 1.5},
    ])
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            RetryPolicy(**kwargs)

    def test_backoff_deterministic(self):
        policy = RetryPolicy()
        a = backoff_delay(policy, 2, seed=7, task_key="k1")
        b = backoff_delay(policy, 2, seed=7, task_key="k1")
        assert a == b
        assert backoff_delay(policy, 2, seed=8, task_key="k1") != a
        assert backoff_delay(policy, 2, seed=7, task_key="k2") != a

    def test_backoff_grows_and_caps(self):
        policy = RetryPolicy(
            base_delay=0.1, multiplier=2.0, max_delay=0.5, jitter=0.0
        )
        delays = [backoff_delay(policy, n, 0, "k") for n in range(1, 6)]
        assert delays == [0.1, 0.2, 0.4, 0.5, 0.5]

    def test_jitter_bounded(self):
        policy = RetryPolicy(base_delay=1.0, multiplier=1.0, jitter=0.25)
        for n in range(1, 20):
            d = backoff_delay(policy, n, seed=3, task_key=f"k{n}")
            assert 1.0 <= d <= 1.25

    def test_attempt_must_be_positive(self):
        with pytest.raises(ValueError):
            backoff_delay(RetryPolicy(), 0, 0, "k")


# ----------------------------------------------------------------------
# FaultPlan
# ----------------------------------------------------------------------
class TestFaultPlan:
    def test_spec_round_trip(self):
        plan = FaultPlan(crash=0.1, hang=0.05, garbage=0.02, seed=7,
                         hang_seconds=30.0, kill_after_checkpoints=4)
        assert FaultPlan.parse(plan.as_spec()) == plan

    def test_parse(self):
        plan = FaultPlan.parse("crash=0.2, hang=0.1, seed=9")
        assert plan.crash == 0.2 and plan.hang == 0.1 and plan.seed == 9
        assert plan.garbage == 0.0

    @pytest.mark.parametrize("spec", [
        "crash=lots",             # non-numeric value
        "explode=0.5",            # unknown key
        "crash",                  # not key=value
        "crash=0.7,hang=0.7",     # rates sum past 1
        "crash=-0.1",             # negative rate
        "hang_seconds=0",         # non-positive hang
        "kill_after_checkpoints=0",
    ])
    def test_bad_specs_raise_format_error(self, spec):
        with pytest.raises(FormatError):
            FaultPlan.parse(spec)

    def test_decide_deterministic_and_attempt_dependent(self):
        plan = FaultPlan(crash=0.3, hang=0.2, garbage=0.1, seed=13)
        keys = [f"task-{i}" for i in range(400)]
        first = [plan.decide(k, 1) for k in keys]
        assert first == [plan.decide(k, 1) for k in keys]
        # Each class is actually drawn, at roughly its configured rate.
        for fault, rate in (("crash", 0.3), ("hang", 0.2), ("garbage", 0.1)):
            frac = first.count(fault) / len(keys)
            assert abs(frac - rate) < 0.1
        # Decisions are independent across attempts: a crashed first
        # attempt usually draws clean later (else retries could never
        # converge and the chaos suite could never match digests).
        crashed = [k for k, f in zip(keys, first) if f == "crash"]
        assert any(plan.decide(k, 2) != "crash" for k in crashed)

    def test_zero_plan_never_faults(self):
        plan = FaultPlan(seed=1)
        assert all(plan.decide(f"k{i}", 1) is None for i in range(50))

    def test_corrupt_assignment_never_validates(self):
        channel, conns = small_corpus(1)[0]
        good = RoutingEngine().route(channel, conns, max_segments=2)
        bad = corrupt_assignment(good.assignment, channel.n_tracks)
        with pytest.raises(Exception):
            Routing(channel, conns, bad).validate(2)


# ----------------------------------------------------------------------
# CheckpointJournal
# ----------------------------------------------------------------------
class TestCheckpointJournal:
    def test_round_trip(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        with CheckpointJournal(path) as journal:
            journal.append("a", {"x": 1})
            journal.append("b", {"y": [2, 3]})
            assert journal.records_written == 2
        with CheckpointJournal(path, resume=True) as journal:
            assert len(journal) == 2
            assert journal.has("a") and journal.get("b") == {"y": [2, 3]}
            assert not journal.has("c")

    def test_fresh_open_truncates(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        with CheckpointJournal(path) as journal:
            journal.append("a", {"x": 1})
        with CheckpointJournal(path):  # resume=False: a fresh run
            pass
        with CheckpointJournal(path, resume=True) as journal:
            assert len(journal) == 0

    def test_torn_tail_dropped_and_truncated(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        with CheckpointJournal(path) as journal:
            journal.append("a", {"x": 1})
            journal.append("b", {"x": 2})
        with open(path, "a") as fh:
            fh.write('{"key": "c", "payload": {"x": 3}, "sha')  # torn write
        with CheckpointJournal(path, resume=True) as journal:
            assert len(journal) == 2 and not journal.has("c")
            journal.append("c", {"x": 33})
        # The torn line was physically truncated: a second resume sees a
        # clean three-record journal, not mid-file corruption.
        with CheckpointJournal(path, resume=True) as journal:
            assert len(journal) == 3 and journal.get("c") == {"x": 33}

    def test_mid_file_corruption_raises(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        with CheckpointJournal(path) as journal:
            journal.append("a", {"x": 1})
            journal.append("b", {"x": 2})
        lines = open(path).read().splitlines()
        tampered = lines[0].replace('"x":1', '"x":9')  # checksum now wrong
        with open(path, "w") as fh:
            fh.write("\n".join([tampered, lines[1]]) + "\n")
        with pytest.raises(CheckpointError, match="line 1"):
            CheckpointJournal(path, resume=True)

    def test_append_after_close_raises(self, tmp_path):
        journal = CheckpointJournal(str(tmp_path / "j.jsonl"))
        journal.close()
        with pytest.raises(CheckpointError):
            journal.append("a", {})

    def test_record_key_stable_and_index_scoped(self):
        assert record_key(3, "key") == record_key(3, "key")
        assert record_key(3, "key") != record_key(4, "key")
        assert record_key(3, "key") != record_key(3, "other")


# ----------------------------------------------------------------------
# route_many + journal
# ----------------------------------------------------------------------
class TestCheckpointedBatch:
    def test_journal_then_resume_is_bit_identical(self, tmp_path):
        instances = small_corpus()
        baseline = RoutingEngine(EngineConfig(jobs=1)).route_many(
            instances, max_segments=2
        )
        digest = result_stream_digest(baseline)
        path = str(tmp_path / "ckpt.jsonl")

        first = RoutingEngine(EngineConfig(jobs=1))
        with CheckpointJournal(path) as journal:
            # Interrupted run: only the first half of the batch ran.
            partial = first.route_many(
                instances[:4], max_segments=2, journal=journal
            )
        assert all(r.ok for r in partial)
        assert first.metrics.counter("checkpoint_records_written") == 4

        second = RoutingEngine(EngineConfig(jobs=1))
        with CheckpointJournal(path, resume=True) as journal:
            results = second.route_many(
                instances, max_segments=2, journal=journal
            )
        assert result_stream_digest(results) == digest
        assert second.metrics.counter("checkpoint_records_skipped") == 4
        assert second.metrics.counter("checkpoint_records_written") == 4
        with CheckpointJournal(path, resume=True) as journal:
            assert len(journal) == len(instances)

    def test_restored_records_are_revalidated(self, tmp_path):
        instances = small_corpus(2)
        path = str(tmp_path / "ckpt.jsonl")
        channel, conns = instances[0]
        key = repr(canonical_key(channel, conns, 2, None, "auto"))
        with CheckpointJournal(path) as journal:
            # A record with a *valid checksum* but a garbage assignment —
            # e.g. the manifest changed between runs.
            journal.append(record_key(0, key), {
                "ok": True,
                "assignment": [channel.n_tracks + 5] * len(conns),
                "algorithm": "exact", "duration": 0.0, "cache_hit": False,
                "fallbacks": 0, "timed_out": False,
                "error_type": None, "error": None, "max_segments": 2,
            })
        engine = RoutingEngine(EngineConfig(jobs=1))
        with CheckpointJournal(path, resume=True) as journal:
            with pytest.raises(CheckpointError, match="does not validate"):
                engine.route_many(instances, max_segments=2, journal=journal)

    def test_failed_results_are_journaled_too(self, tmp_path):
        channel, conns = small_corpus(1)[0]
        path = str(tmp_path / "ckpt.jsonl")
        engine = RoutingEngine(EngineConfig(jobs=1))
        with CheckpointJournal(path) as journal:
            results = engine.route_many(
                [(channel, conns)], max_segments=0, journal=journal
            )
        assert not results[0].ok
        engine2 = RoutingEngine(EngineConfig(jobs=1))
        with CheckpointJournal(path, resume=True) as journal:
            resumed = engine2.route_many(
                [(channel, conns)], max_segments=0, journal=journal
            )
        assert resumed[0].error_type == results[0].error_type
        assert engine2.metrics.counter("checkpoint_records_skipped") == 1


# ----------------------------------------------------------------------
# sequential fault recovery (jobs=1: no pool, faults simulated in-process)
# ----------------------------------------------------------------------
class TestSequentialFaultRecovery:
    def test_crash_injection_recovers_bit_identically(self):
        instances = small_corpus()
        baseline = RoutingEngine(EngineConfig(jobs=1)).route_many(
            instances, max_segments=2
        )
        engine = RoutingEngine(EngineConfig(
            jobs=1, retry=FAST_RETRY, fault_plan=FaultPlan(crash=0.3, seed=5),
        ))
        results = engine.route_many(instances, max_segments=2)
        assert all(r.ok for r in results)
        assert result_stream_digest(results) == result_stream_digest(baseline)
        assert engine.metrics.counter("retries_total") > 0

    def test_garbage_injection_is_caught_and_retried(self):
        instances = small_corpus(4)
        baseline = RoutingEngine(EngineConfig(jobs=1)).route_many(
            instances, max_segments=2
        )
        engine = RoutingEngine(EngineConfig(
            jobs=1, retry=FAST_RETRY,
            fault_plan=FaultPlan(garbage=0.4, seed=2),
        ))
        results = engine.route_many(instances, max_segments=2)
        # Every surviving routing validated; corrupt ones were retried.
        assert all(r.ok for r in results)
        assert result_stream_digest(results) == result_stream_digest(baseline)

    def test_poison_task_quarantined_and_batch_continues(self):
        instances = small_corpus(3)
        engine = RoutingEngine(EngineConfig(
            jobs=1,
            retry=RetryPolicy(max_attempts=3, max_worker_crashes=2,
                              base_delay=0.001, max_delay=0.002),
            fault_plan=FaultPlan(crash=1.0, seed=0),  # every attempt crashes
        ))
        results = engine.route_many(instances, max_segments=2)
        assert len(results) == len(instances)
        assert all(
            r.error_type == TaskQuarantinedError.__name__ for r in results
        )
        assert engine.metrics.counter("tasks_quarantined") == len(instances)

    def test_quarantine_raises_typed_error_on_single_route(self):
        channel, conns = small_corpus(1)[0]
        engine = RoutingEngine(EngineConfig(
            jobs=1,
            retry=RetryPolicy(max_attempts=2, max_worker_crashes=2,
                              base_delay=0.001, max_delay=0.002),
            fault_plan=FaultPlan(crash=1.0, seed=0),
        ))
        with pytest.raises(TaskQuarantinedError, match="poison task"):
            engine.route(channel, conns, max_segments=2)

    def test_permanent_garbage_surfaces_validation_error(self):
        channel, conns = small_corpus(1)[0]
        engine = RoutingEngine(EngineConfig(
            jobs=1,
            retry=RetryPolicy(max_attempts=3, base_delay=0.001,
                              max_delay=0.002),
            fault_plan=FaultPlan(garbage=1.0, seed=0),
        ))
        results = engine.route_many([(channel, conns)], max_segments=2)
        assert results[0].error_type == ValidationError.__name__


# ----------------------------------------------------------------------
# supervised pool recovery (small; the big ones are chaos-marked)
# ----------------------------------------------------------------------
@pytest.mark.skipif(not _HAS_FORK, reason="needs fork start method")
class TestSupervisedPool:
    def test_pool_survives_worker_crashes(self):
        instances = small_corpus(6)
        keys = corpus_task_keys(instances)
        # Pick a seed that actually crashes at least one first attempt.
        seed = next(
            s for s in range(100)
            if any(FaultPlan(crash=0.35, seed=s).decide(k, 1) == "crash"
                   for k in keys)
        )
        baseline = RoutingEngine(EngineConfig(jobs=1)).route_many(
            instances, max_segments=2
        )
        engine = RoutingEngine(EngineConfig(
            jobs=2, retry=FAST_RETRY,
            fault_plan=FaultPlan(crash=0.35, seed=seed),
        ))
        results = engine.route_many(instances, max_segments=2)
        assert all(r.ok for r in results)
        assert result_stream_digest(results) == result_stream_digest(baseline)
        assert engine.metrics.counter("worker_crashes") > 0
        assert engine.metrics.counter("pool_rebuilds") > 0


# ----------------------------------------------------------------------
# manifest errors (CLI satellite)
# ----------------------------------------------------------------------
def _batch_args(manifest, k=None):
    return argparse.Namespace(instances=[], manifest=manifest, k=k)


class TestManifestError:
    @pytest.mark.parametrize("line, match", [
        ("not json at all", ":2: bad manifest line"),
        ("[1, 2, 3]", "expected a JSON object"),
        ('{"k": 2}', ":2:"),                       # no path at all
        ('{"path": 42}', "must be a string"),
        ('{"path": "x.sch", "k": "two"}', "k must be an integer"),
    ])
    def test_bad_line_raises_typed_error(self, tmp_path, line, match):
        from repro.cli import _load_batch_specs

        manifest = tmp_path / "m.jsonl"
        manifest.write_text('{"path": "ok.sch"}\n' + line + "\n")
        with pytest.raises(ManifestError, match=match):
            _load_batch_specs(_batch_args(str(manifest)))

    def test_good_manifest_loads(self, tmp_path):
        from repro.cli import _load_batch_specs

        manifest = tmp_path / "m.jsonl"
        manifest.write_text(
            "# comment\n"
            '{"path": "a.sch", "k": 2}\n'
            "\n"
            '{"instance": "b.sch"}\n'
        )
        specs = _load_batch_specs(_batch_args(str(manifest), k=3))
        assert specs == [("a.sch", 2), ("b.sch", 3)]

    def test_missing_manifest_file(self, tmp_path):
        from repro.cli import _load_batch_specs

        with pytest.raises(ManifestError, match="cannot read manifest"):
            _load_batch_specs(_batch_args(str(tmp_path / "absent.jsonl")))

    def test_cli_reports_line_number_not_traceback(self, tmp_path, capsys):
        from repro.cli import main

        manifest = tmp_path / "m.jsonl"
        manifest.write_text("}{ garbage\n")
        assert main(["batch", "--manifest", str(manifest)]) == 1
        err = capsys.readouterr().err
        assert f"{manifest}:1:" in err and "Traceback" not in err

    def test_resume_requires_checkpoint(self, tmp_path, capsys):
        from repro.cli import main

        assert main(["batch", "x.sch", "--resume"]) == 1
        assert "--resume requires --checkpoint" in capsys.readouterr().err


# ----------------------------------------------------------------------
# metrics rendering (satellite)
# ----------------------------------------------------------------------
def test_resilience_counters_render():
    engine = RoutingEngine(EngineConfig(
        jobs=1, retry=FAST_RETRY, fault_plan=FaultPlan(crash=0.3, seed=5),
    ))
    engine.route_many(small_corpus(), max_segments=2)
    engine.metrics.incr("checkpoint_records_written", 3)
    engine.metrics.incr("checkpoint_records_skipped")
    rendered = engine.render_stats()
    assert engine.metrics.counter("retries_total") > 0
    assert "retries_total" in rendered
    assert "checkpoint_records_written" in rendered
    assert "checkpoint_records_skipped" in rendered


def test_fault_plan_env_var_fallback(tmp_path, monkeypatch):
    from repro.cli import _fault_plan

    args = argparse.Namespace(inject_faults=None)
    monkeypatch.setenv("ENGINE_FAULT_PLAN", "crash=0.25,seed=9")
    plan = _fault_plan(args)
    assert plan == FaultPlan(crash=0.25, seed=9)
    args = argparse.Namespace(inject_faults="hang=0.5,seed=1")
    assert _fault_plan(args) == FaultPlan(hang=0.5, seed=1)
    monkeypatch.delenv("ENGINE_FAULT_PLAN")
    assert _fault_plan(argparse.Namespace(inject_faults=None)) is None

"""Generalized-routing renderer and chip renderer tests."""

from repro.core.generalized import route_generalized
from repro.design.segmentation import geometric_segmentation
from repro.fpga.architecture import FPGAArchitecture
from repro.fpga.detail_route import route_chip
from repro.fpga.netlist import random_netlist
from repro.fpga.placement import place_greedy
from repro.fpga.render import render_chip
from repro.generators.paper_examples import fig4_channel, fig4_connections
from repro.viz.render import render_generalized_routing


def test_generalized_render_lists_track_changes():
    ch, cs = fig4_channel(), fig4_connections()
    g = route_generalized(ch, cs)
    text = render_generalized_routing(g)
    assert "track changes:" in text
    assert "c4" in text
    assert "t2 -> t3" in text or "->" in text


def test_generalized_render_tracks_drawn():
    ch, cs = fig4_channel(), fig4_connections()
    g = route_generalized(ch, cs)
    text = render_generalized_routing(g)
    assert text.count("\n") >= ch.n_tracks


def test_render_chip_shows_rows_and_channels():
    arch = FPGAArchitecture(
        2, 4, 3, channel_factory=lambda n: geometric_segmentation(8, n, 4, 2.0, 3)
    )
    nl = random_netlist(8, 3, seed=2)
    pl = place_greedy(arch, nl, seed=2)
    chip = route_chip(arch, nl, pl, max_segments=2)
    text = render_chip(chip)
    assert "--- channel 0 ---" in text
    assert "row0" in text and "row1" in text
    for name in nl.cells:
        assert name in text


def test_render_chip_reports_failures():
    from repro.core.channel import uniform_channel

    arch = FPGAArchitecture(
        2, 4, 3, channel_factory=lambda n: uniform_channel(1, n, 4)
    )
    nl = random_netlist(8, 3, seed=3)
    pl = place_greedy(arch, nl, seed=3)
    chip = route_chip(arch, nl, pl, max_segments=2)
    text = render_chip(chip)
    if not chip.ok:
        assert "UNROUTED" in text

"""Golden-figure tests: exact rendered output for the paper instances.

Rendering is part of the public API surface (examples and CLI show it),
so its exact output is pinned for the two figures users will compare
against the paper.  Any intentional renderer change must update these
strings consciously.
"""

from repro.core.greedy import route_one_segment_greedy
from repro.generators.paper_examples import fig3_channel, fig3_connections
from repro.viz.render import render_channel, render_routing

FIG3_CHANNEL_GOLDEN = """\
   1  2  3  4  5  6  7  8  9
t1 -----o-----------o--------
t2 --------o--------o--------
t3 --------------o-----------"""

FIG3_ROUTED_GOLDEN = """\
   1  2  3  4  5  6  7  8  9
t1 .. ..o-- ========o========   c3, c5
t2 ========o.. .. ..o.. .. ..   c1
t3 -- ===========o======== --   c2, c4"""


def test_fig3_channel_golden():
    assert render_channel(fig3_channel()) == FIG3_CHANNEL_GOLDEN


def test_fig3_routing_golden():
    routing = route_one_segment_greedy(fig3_channel(), fig3_connections())
    assert render_routing(routing) == FIG3_ROUTED_GOLDEN


def test_goldens_are_stable_across_calls():
    a = render_channel(fig3_channel())
    b = render_channel(fig3_channel())
    assert a == b

"""ASCII renderer tests."""

from repro.core.channel import channel_from_breaks
from repro.core.connection import ConnectionSet
from repro.core.greedy import route_one_segment_greedy
from repro.core.routing import Routing
from repro.generators.paper_examples import fig3_channel, fig3_connections
from repro.viz.render import render_channel, render_connections, render_routing


def test_render_channel_marks_switches():
    ch = channel_from_breaks(5, [(2,), ()])
    text = render_channel(ch)
    lines = text.splitlines()
    assert len(lines) == 3  # ruler + 2 tracks
    assert "o" in lines[1]
    assert "o" not in lines[2]


def test_render_connections_extents():
    cs = ConnectionSet.from_spans([(2, 4)])
    text = render_connections(cs, 5)
    assert "==" in text
    assert "[2,4]" in text


def test_render_connections_default_width():
    cs = ConnectionSet.from_spans([(2, 4)])
    assert "[2,4]" in render_connections(cs)


def test_render_routing_programmed_switch():
    # A connection crossing a break shows a programmed switch '*'.
    ch = channel_from_breaks(6, [(3,)])
    cs = ConnectionSet.from_spans([(2, 5)])
    text = render_routing(Routing(ch, cs, (0,)))
    assert "*" in text


def test_render_routing_unprogrammed_switch_stays_o():
    ch = channel_from_breaks(6, [(3,)])
    cs = ConnectionSet.from_spans([(1, 2)])
    text = render_routing(Routing(ch, cs, (0,)))
    assert "o" in text and "*" not in text


def test_render_routing_shows_labels():
    r = route_one_segment_greedy(fig3_channel(), fig3_connections())
    text = render_routing(r)
    for name in ("c1", "c2", "c3", "c4", "c5"):
        assert name in text


def test_render_deterministic():
    r = route_one_segment_greedy(fig3_channel(), fig3_connections())
    assert render_routing(r) == render_routing(r)


def test_slack_rendered_differently_from_used():
    ch = channel_from_breaks(8, [()])
    cs = ConnectionSet.from_spans([(3, 4)])
    text = render_routing(Routing(ch, cs, (0,)))
    assert "--" in text and "==" in text

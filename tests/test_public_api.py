"""Public API surface checks.

Guards the package's contract: everything advertised in ``__all__``
exists, is importable from the top level, and carries a docstring —
the kind of hygiene a downstream user relies on.
"""

import inspect

import pytest

import repro
import repro.analysis
import repro.design
import repro.fpga
import repro.generators
import repro.io
import repro.viz


@pytest.mark.parametrize(
    "module",
    [repro, repro.analysis, repro.design, repro.fpga, repro.generators,
     repro.io, repro.viz],
)
def test_all_names_resolve(module):
    for name in module.__all__:
        assert hasattr(module, name), f"{module.__name__}.{name} missing"


@pytest.mark.parametrize(
    "module",
    [repro, repro.analysis, repro.design, repro.fpga, repro.generators,
     repro.io, repro.viz],
)
def test_public_callables_documented(module):
    undocumented = []
    for name in module.__all__:
        obj = getattr(module, name)
        if callable(obj) and not (obj.__doc__ or "").strip():
            undocumented.append(f"{module.__name__}.{name}")
    assert not undocumented, undocumented


def test_version_exported():
    assert repro.__version__ == "1.0.0"


def test_no_private_leaks_in_top_level_all():
    # __version__ is the single sanctioned dunder.
    assert [n for n in repro.__all__ if n.startswith("_")] == ["__version__"]


def test_core_algorithms_reachable_from_top_level():
    for name in (
        "route", "route_dp", "route_exact", "route_lp",
        "route_one_segment_greedy", "route_two_segment_tracks_greedy",
        "route_one_segment_matching", "route_dp_track_types",
        "route_generalized", "route_generalized_min_switches",
        "route_dp_decomposed", "insert_connection", "diagnose",
        "build_unlimited_instance", "build_two_segment_instance",
    ):
        assert callable(getattr(repro, name)), name


def test_every_source_module_has_docstring():
    import pathlib

    src = pathlib.Path(repro.__file__).parent
    missing = []
    for path in src.rglob("*.py"):
        text = path.read_text()
        stripped = text.lstrip()
        if not stripped:
            continue  # intentional empty __init__
        if not stripped.startswith(('"""', "'''", '#')):
            missing.append(str(path.relative_to(src)))
    assert not missing, missing

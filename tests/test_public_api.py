"""Public API surface checks.

Guards the package's contract: everything advertised in ``__all__``
exists, is importable from the top level, and carries a docstring —
the kind of hygiene a downstream user relies on.
"""

import inspect
import pathlib
import re

import pytest

import repro
import repro.analysis
import repro.design
import repro.fpga
import repro.generators
import repro.io
import repro.viz


@pytest.mark.parametrize(
    "module",
    [repro, repro.analysis, repro.design, repro.fpga, repro.generators,
     repro.io, repro.viz],
)
def test_all_names_resolve(module):
    for name in module.__all__:
        assert hasattr(module, name), f"{module.__name__}.{name} missing"


@pytest.mark.parametrize(
    "module",
    [repro, repro.analysis, repro.design, repro.fpga, repro.generators,
     repro.io, repro.viz],
)
def test_public_callables_documented(module):
    undocumented = []
    for name in module.__all__:
        obj = getattr(module, name)
        if callable(obj) and not (obj.__doc__ or "").strip():
            undocumented.append(f"{module.__name__}.{name}")
    assert not undocumented, undocumented


def test_version_exported():
    # Semver-shaped; the exact value lives only in repro/__init__.py
    # (pyproject.toml reads it via [tool.setuptools.dynamic]).
    assert re.fullmatch(r"\d+\.\d+\.\d+", repro.__version__)


def test_version_single_sourced():
    pyproject = (
        pathlib.Path(__file__).resolve().parents[1] / "pyproject.toml"
    ).read_text()
    assert 'dynamic = ["version"]' in pyproject
    assert 'version = { attr = "repro.__version__" }' in pyproject
    assert not re.search(r'^version\s*=\s*"\d', pyproject, re.MULTILINE)


def test_no_private_leaks_in_top_level_all():
    # __version__ is the single sanctioned dunder.
    assert [n for n in repro.__all__ if n.startswith("_")] == ["__version__"]


def test_core_algorithms_reachable_from_top_level():
    for name in (
        "route", "route_dp", "route_exact", "route_lp",
        "route_one_segment_greedy", "route_two_segment_tracks_greedy",
        "route_one_segment_matching", "route_dp_track_types",
        "route_generalized", "route_generalized_min_switches",
        "route_dp_decomposed", "insert_connection", "diagnose",
        "build_unlimited_instance", "build_two_segment_instance",
    ):
        assert callable(getattr(repro, name)), name


def test_every_source_module_has_docstring():
    import pathlib

    src = pathlib.Path(repro.__file__).parent
    missing = []
    for path in src.rglob("*.py"):
        text = path.read_text()
        stripped = text.lstrip()
        if not stripped:
            continue  # intentional empty __init__
        if not stripped.startswith(('"""', "'''", '#')):
            missing.append(str(path.relative_to(src)))
    assert not missing, missing

"""Tests for the maintenance tooling."""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "tools"))

from collect_bench_tables import extract_tables  # noqa: E402


SAMPLE = """\
some pytest noise
FIG3: 1-segment greedy on the Fig. 3 instance
connection   span  segment
        c1  [1,3]      s21
.                                                       [100%]
more noise
LP60: LP relaxation success on feasible random instances
 M   T  rate
60  25   8/8
------------------------------ benchmark: 2 tests -----------------------
irrelevant trailer
"""


def test_extract_finds_blocks():
    out = extract_tables(SAMPLE)
    assert "FIG3:" in out
    assert "LP60:" in out
    assert "s21" in out
    assert "8/8" in out


def test_extract_drops_noise():
    out = extract_tables(SAMPLE)
    assert "pytest noise" not in out
    assert "irrelevant trailer" not in out
    assert "benchmark: 2 tests" not in out


def test_blocks_separated_by_blank_line():
    out = extract_tables(SAMPLE)
    blocks = [b for b in out.split("\n\n") if b.strip()]
    assert len(blocks) == 2

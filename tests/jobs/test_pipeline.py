"""Chip-pipeline unit tests: spec validation, determinism, resume."""

import os

import pytest

from repro.core.errors import CheckpointError, FormatError
from repro.engine import EngineConfig, RoutingEngine
from repro.fpga.architecture import FPGAArchitecture
from repro.fpga.congestion import route_chip_negotiated
from repro.fpga.detail_route import chip_digest
from repro.fpga.netlist import random_netlist
from repro.io.netlist_format import dumps_netlist, loads_netlist
from repro.jobs import (
    ChipSpec,
    PipelineAbort,
    build_chip_instance,
    run_chip_pipeline,
)


def _spec(**overrides):
    fields = dict(
        netlist_text=dumps_netlist(random_netlist(14, 3, seed=23)),
        rows=3, cells_per_row=6, tracks=5, seg_types=2, seed=23,
    )
    fields.update(overrides)
    return ChipSpec(**fields)


@pytest.fixture(scope="module")
def engine():
    eng = RoutingEngine(EngineConfig(jobs=1))
    yield eng
    eng.close()


class TestChipSpec:
    def test_payload_round_trip(self):
        spec = _spec()
        assert ChipSpec.from_payload(spec.to_payload()) == spec

    def test_rejects_unknown_payload_fields(self):
        payload = _spec().to_payload()
        payload["wat"] = 1
        with pytest.raises(FormatError):
            ChipSpec.from_payload(payload)

    def test_rejects_missing_payload_fields(self):
        payload = _spec().to_payload()
        del payload["rows"]
        with pytest.raises(FormatError):
            ChipSpec.from_payload(payload)

    def test_validates_field_values(self):
        with pytest.raises(FormatError):
            _spec(rows=0)
        with pytest.raises(FormatError):
            _spec(channel_kind="diagonal")
        with pytest.raises(FormatError):
            _spec(max_rounds=-1)
        with pytest.raises(FormatError):
            _spec(netlist_text="this is not a netlist {")

    def test_build_chip_instance_deterministic(self):
        spec = _spec()
        arch1, nl1, pl1 = build_chip_instance(spec)
        arch2, nl2, pl2 = build_chip_instance(spec)
        assert isinstance(arch1, FPGAArchitecture)
        assert nl1.nets == nl2.nets
        assert pl1.sites == pl2.sites
        assert loads_netlist(spec.netlist_text).nets == nl1.nets


class TestRunChipPipeline:
    def test_matches_route_chip_negotiated(self):
        spec = _spec()
        result = run_chip_pipeline(spec)
        arch, nl, pl = build_chip_instance(spec)
        offline = route_chip_negotiated(
            arch, nl, pl, max_segments=spec.max_segments,
            max_rounds=spec.max_rounds,
        )
        assert result.ok == offline.ok
        assert result.digest == chip_digest(offline)
        # Per-round digests cover the negotiation trajectory: the last
        # report is the returned chip for a converged run.
        assert result.rounds[-1].digest == result.digest
        assert result.rounds[0].ok is False  # infeasible-first corpus

    def test_engine_path_digest_identical(self, engine):
        spec = _spec()
        serial = run_chip_pipeline(spec)
        engined = run_chip_pipeline(spec, engine=engine)
        assert engined.digest == serial.digest
        assert [r.digest for r in engined.rounds] == [
            r.digest for r in serial.rounds
        ]

    def test_state_dir_requires_engine(self, tmp_path):
        with pytest.raises(ValueError):
            run_chip_pipeline(_spec(), state_dir=str(tmp_path))

    def test_journal_resume_digest_identical(self, engine, tmp_path):
        spec = _spec()
        state = str(tmp_path / "job")
        first = run_chip_pipeline(spec, engine=engine, state_dir=state)
        assert first.resumed_records == 0
        assert os.path.exists(os.path.join(state, "rounds.jsonl"))
        # Rerun over the same state dir: every per-channel solve is
        # replayed from its round journal, bit-identically.
        second = run_chip_pipeline(spec, engine=engine, state_dir=state)
        assert second.digest == first.digest
        assert second.resumed_records == sum(
            r.n_solved for r in first.rounds
        )

    def test_resume_rejects_diverged_journal(self, engine, tmp_path):
        spec = _spec()
        state = str(tmp_path / "job")
        run_chip_pipeline(spec, engine=engine, state_dir=state)
        # A different spec against the same journals is a corruption
        # hazard, not a resume: the round-digest cross-check trips.
        other = _spec(seed=24)
        with pytest.raises(CheckpointError):
            run_chip_pipeline(other, engine=engine, state_dir=state)

    def test_abort_check_raises(self):
        calls = []

        def check_abort():
            calls.append(True)
            return "test abort" if len(calls) > 1 else None

        with pytest.raises(PipelineAbort) as excinfo:
            run_chip_pipeline(_spec(), check_abort=check_abort)
        assert excinfo.value.reason == "test abort"

    def test_on_round_reports(self):
        reports = []
        result = run_chip_pipeline(_spec(), on_round=reports.append)
        assert [r.round_index for r in reports] == list(
            range(len(result.rounds))
        )
        payload = reports[0].to_payload()
        assert payload["digest"] == reports[0].digest
        assert payload["round"] == 0

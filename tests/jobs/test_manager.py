"""Job-manager lifecycle tests: submit/status/cancel/results, admission,
deadlines, and restart recovery over a ``jobs_dir``."""

import functools
import json
import os
import time

import pytest

from repro.core.errors import AdmissionRejected, FormatError
from repro.fpga.netlist import random_netlist
from repro.io.netlist_format import dumps_netlist
from repro.io.results import digest_records
from repro.jobs import JobConflict, JobError, JobManager, JobNotFound, JobNotReady
from repro.jobs.pipeline import ChipSpec, run_chip_pipeline


def _payload(seed=23, nets=14, tracks=5, max_rounds=8, cells_per_row=6):
    return {
        "netlist_text": dumps_netlist(random_netlist(nets, 3, seed=seed)),
        "rows": 3,
        "cells_per_row": cells_per_row,
        "tracks": tracks,
        "seg_types": 2,
        "seed": seed,
        "max_rounds": max_rounds,
    }


#: Converges ok after one negotiation round (2 rounds total), ~20ms.
QUICK = _payload()
#: Never converges: a wide starved chip that burns all 64 rounds over
#: several seconds — the slow job for cancel, deadline, queue-pressure,
#: and interrupted-resume tests.
HEAVY = _payload(seed=11, nets=300, tracks=4, max_rounds=64, cells_per_row=100)


@functools.lru_cache(maxsize=None)
def _offline_digest(seed, nets, tracks, max_rounds, cells_per_row) -> str:
    spec = ChipSpec.from_payload(_payload(
        seed=seed, nets=nets, tracks=tracks, max_rounds=max_rounds,
        cells_per_row=cells_per_row,
    ))
    return run_chip_pipeline(spec).digest


def QUICK_DIGEST() -> str:
    return _offline_digest(23, 14, 5, 8, 6)


def HEAVY_DIGEST() -> str:
    return _offline_digest(11, 300, 4, 64, 100)


def _wait(manager, job_id, timeout=60.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        status = manager.status(job_id)
        if status["state"] in ("done", "failed", "cancelled"):
            return status
        time.sleep(0.02)
    raise AssertionError(f"job {job_id} did not finish: {status}")


@pytest.fixture
def manager(tmp_path):
    mgr = JobManager(
        max_active=1, max_queued=4, jobs_dir=str(tmp_path / "jobs"),
    )
    yield mgr
    mgr.close()


class TestLifecycle:
    def test_submit_runs_to_done_with_offline_digest(self, manager):
        submitted = manager.submit(QUICK, job_id="j1")
        assert submitted["state"] in ("queued", "running")
        status = _wait(manager, "j1")
        assert status["state"] == "done"
        assert status["ok"] is True
        assert status["digest"] == QUICK_DIGEST()
        assert status["n_rounds"] == 2

    def test_results_pages_rebuild_the_digest(self, manager):
        manager.submit(QUICK, job_id="j1")
        _wait(manager, "j1")
        records, start = [], 0
        while True:
            page = manager.results("j1", start=start, limit=2)
            assert len(page["records"]) <= 2
            records.extend(page["records"])
            start = page["next"]
            if page["eof"]:
                break
        assert len(records) == page["total"]
        assert digest_records(records) == QUICK_DIGEST()

    def test_duplicate_submit_is_idempotent(self, manager):
        manager.submit(QUICK, job_id="j1")
        again = manager.submit(QUICK, job_id="j1")
        assert again["job_id"] == "j1"
        assert manager.metrics_snapshot()["counters"][
            "jobs.duplicate_submits"
        ] == 1

    def test_conflicting_spec_same_id_raises(self, manager):
        manager.submit(QUICK, job_id="j1")
        with pytest.raises(JobConflict):
            manager.submit(HEAVY, job_id="j1")

    def test_bad_spec_and_bad_id_are_typed(self, manager):
        with pytest.raises(FormatError):
            manager.submit({"rows": 3})
        with pytest.raises(JobError):
            manager.submit(QUICK, job_id="../evil")

    def test_unknown_job_raises(self, manager):
        with pytest.raises(JobNotFound):
            manager.status("nope")

    def test_results_before_done_raises(self, manager):
        manager.submit(HEAVY, job_id="slow")
        with pytest.raises(JobNotReady):
            manager.results("slow")

    def test_queue_bound_rejects(self, tmp_path):
        mgr = JobManager(
            max_active=1, max_queued=1, jobs_dir=str(tmp_path / "jobs"),
        )
        try:
            mgr.submit(HEAVY, job_id="busy")
            time.sleep(0.3)  # let the worker claim it off the queue
            mgr.submit(QUICK, job_id="waiting")
            with pytest.raises(AdmissionRejected) as excinfo:
                mgr.submit(_payload(seed=24), job_id="rejected")
            assert excinfo.value.status == "overloaded"
        finally:
            mgr.close()

    def test_cancel_running_job(self, manager):
        manager.submit(HEAVY, job_id="slow")
        time.sleep(0.2)
        manager.cancel("slow")
        status = _wait(manager, "slow")
        assert status["state"] == "cancelled"
        with pytest.raises(JobError):
            manager.results("slow")

    def test_cancel_queued_job_is_immediate(self, manager):
        manager.submit(HEAVY, job_id="busy")
        manager.submit(QUICK, job_id="queued")
        status = manager.cancel("queued")
        assert status["state"] == "cancelled"

    def test_deadline_aborts(self, manager):
        manager.submit(HEAVY, job_id="late", deadline_s=0.05)
        status = _wait(manager, "late")
        assert status["state"] == "cancelled"
        assert "deadline" in (status.get("error") or "")


class TestRecovery:
    def test_done_jobs_survive_restart(self, tmp_path):
        jobs_dir = str(tmp_path / "jobs")
        first = JobManager(max_active=1, jobs_dir=jobs_dir)
        try:
            first.submit(QUICK, job_id="j1")
            _wait(first, "j1")
        finally:
            first.close()
        second = JobManager(max_active=1, jobs_dir=jobs_dir)
        try:
            status = second.status("j1")
            assert status["state"] == "done"
            assert status["digest"] == QUICK_DIGEST()
            page = second.results("j1")
            assert digest_records(page["records"]) == QUICK_DIGEST()
        finally:
            second.close()

    def test_interrupted_job_resumes_bit_identically(self, tmp_path):
        jobs_dir = str(tmp_path / "jobs")
        first = JobManager(max_active=1, jobs_dir=jobs_dir)
        try:
            first.submit(HEAVY, job_id="j1")
            time.sleep(0.2)  # into the early rounds, journals on disk
        finally:
            # Shutdown aborts the running job at its next round
            # boundary and leaves NO done.json: the job is still owed.
            first.close()
        assert os.path.exists(os.path.join(jobs_dir, "j1", "spec.json"))
        assert not os.path.exists(os.path.join(jobs_dir, "j1", "done.json"))
        second = JobManager(max_active=1, jobs_dir=jobs_dir)
        try:
            status = _wait(second, "j1")
            assert status["state"] == "done"
            assert status["resumed"] is True
            assert status["digest"] == HEAVY_DIGEST()
        finally:
            second.close()

    def test_recovery_tolerates_junk_entries(self, tmp_path):
        jobs_dir = str(tmp_path / "jobs")
        os.makedirs(os.path.join(jobs_dir, "broken"))
        with open(
            os.path.join(jobs_dir, "broken", "spec.json"), "w"
        ) as fh:
            fh.write("{not json")
        manager = JobManager(max_active=1, jobs_dir=jobs_dir)
        try:
            snap = manager.metrics_snapshot()
            assert snap["counters"].get("jobs.recover_errors", 0) == 1
            manager.submit(QUICK, job_id="fresh")
            assert _wait(manager, "fresh")["digest"] == QUICK_DIGEST()
        finally:
            manager.close()

    def test_done_json_holds_the_full_outcome(self, tmp_path):
        jobs_dir = str(tmp_path / "jobs")
        manager = JobManager(max_active=1, jobs_dir=jobs_dir)
        try:
            manager.submit(QUICK, job_id="j1")
            _wait(manager, "j1")
        finally:
            manager.close()
        with open(os.path.join(jobs_dir, "j1", "done.json")) as fh:
            done = json.load(fh)
        assert done["digest"] == QUICK_DIGEST()
        assert digest_records(done["records"]) == QUICK_DIGEST()

"""Bound-formula tests."""

import math

from repro.analysis.complexity import (
    theorem5_bound,
    theorem6_bound,
    theorem7_bound,
    theorem8_bound,
)


def test_theorem5_small_values():
    assert theorem5_bound(1) == 2
    assert theorem5_bound(2) == 8
    assert theorem5_bound(3) == 48


def test_theorem6_formula():
    assert theorem6_bound(3, 1) == 8
    assert theorem6_bound(2, 2) == 9
    assert theorem6_bound(4, 0) == 1


def test_theorem6_below_theorem5_for_small_k():
    for t in range(1, 8):
        assert theorem6_bound(t, 1) <= theorem5_bound(t)


def test_theorem7_two_types():
    # C(T1+K, K) * C(T2+K, K)
    assert theorem7_bound((3, 4), 2) == math.comb(5, 2) * math.comb(6, 2)


def test_theorem7_single_type():
    assert theorem7_bound((5,), 1) == 6


def test_theorem7_beats_theorem6_for_many_tracks():
    t1 = t2 = 8
    assert theorem7_bound((t1, t2), 2) < theorem6_bound(t1 + t2, 2)


def test_theorem8_positive_and_growing():
    assert theorem8_bound(1) == 4
    assert theorem8_bound(2) < theorem8_bound(3)

"""Channel census tests."""

import pytest

from repro.analysis.channel_stats import profile_channel
from repro.core.channel import (
    channel_from_breaks,
    fully_segmented_channel,
    unsegmented_channel,
    uniform_channel,
)
from repro.design.segmentation import geometric_segmentation


def test_unsegmented_profile():
    p = profile_channel(unsegmented_channel(3, 10))
    assert p.n_segments == 3
    assert p.n_switches == 0
    assert p.switch_density == 0.0
    assert p.segment_length_histogram == ((10, 3),)
    assert p.mean_segment_length == 10.0


def test_fully_segmented_profile():
    p = profile_channel(fully_segmented_channel(2, 5))
    assert p.n_switches == 8
    assert p.switch_density == pytest.approx(0.8)
    assert p.segment_length_histogram == ((1, 10),)


def test_uniform_profile():
    p = profile_channel(uniform_channel(2, 12, 4))
    assert p.segment_length_histogram == ((4, 6),)
    assert p.switches_per_track == (2, 2)
    assert p.n_track_types == 1


def test_mixed_types_counted():
    ch = channel_from_breaks(12, [(4, 8), (6,), (6,)])
    p = profile_channel(ch)
    assert p.n_track_types == 2
    assert p.switches_per_track == (2, 1, 1)


def test_geometric_design_histogram_spread():
    p = profile_channel(geometric_segmentation(9, 64, 4, 2.0, 3))
    lengths = [l for l, _ in p.segment_length_histogram]
    assert min(lengths) < 8 < max(lengths)  # short and long types present


def test_table_renders():
    p = profile_channel(uniform_channel(2, 12, 4))
    assert "segment length" in p.table()
    assert "4" in p.table()

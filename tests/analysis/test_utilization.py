"""Wire-utilization tests."""

import pytest

from repro.analysis.utilization import utilization
from repro.core.channel import channel_from_breaks, fully_segmented_channel
from repro.core.connection import ConnectionSet
from repro.core.left_edge import route_left_edge_unconstrained
from repro.core.routing import Routing


def test_tight_segments_full_efficiency():
    ch = channel_from_breaks(9, [(3, 6)])
    cs = ConnectionSet.from_spans([(1, 3), (4, 6)])
    u = utilization(Routing(ch, cs, (0, 0)))
    assert u.used_columns == 6
    assert u.occupied_columns == 6
    assert u.efficiency == 1.0
    assert u.slack_columns == 0


def test_slack_measured():
    ch = channel_from_breaks(10, [()])
    cs = ConnectionSet.from_spans([(3, 4)])
    u = utilization(Routing(ch, cs, (0,)))
    assert u.used_columns == 2
    assert u.occupied_columns == 10
    assert u.slack_columns == 8
    assert u.efficiency == pytest.approx(0.2)


def test_per_track_split():
    ch = channel_from_breaks(10, [(5,), (5,)])
    cs = ConnectionSet.from_spans([(1, 5), (6, 10)])
    u = utilization(Routing(ch, cs, (0, 1)))
    assert u.per_track_occupied == (5, 5)
    assert u.load == pytest.approx(0.5)


def test_unconstrained_baseline_is_perfectly_efficient():
    cs = ConnectionSet.from_spans([(1, 4), (2, 7), (6, 9)])
    r = route_left_edge_unconstrained(cs)
    u = utilization(r)
    assert u.efficiency == 1.0


def test_empty_routing():
    ch = fully_segmented_channel(2, 5)
    u = utilization(Routing(ch, ConnectionSet([]), ()))
    assert u.used_columns == 0
    assert u.efficiency == 1.0
    assert u.load == 0.0


def test_coarser_segmentation_lower_efficiency():
    cs = ConnectionSet.from_spans([(2, 4), (7, 8)])
    fine = Routing(channel_from_breaks(10, [(4, 6)]), cs, (0, 0))
    coarse = Routing(channel_from_breaks(10, [(5,)]), cs, (0, 0))
    assert utilization(fine).efficiency > utilization(coarse).efficiency

"""Minimum-track search tests."""

import pytest

from repro.analysis.min_tracks import minimum_tracks
from repro.core.channel import fully_segmented_channel, unsegmented_channel
from repro.core.connection import ConnectionSet, density
from repro.core.errors import ReproError, RoutingInfeasibleError
from repro.core.api import route
from repro.design.segmentation import geometric_segmentation, uniform_segmentation


def _geo(T, N):
    return geometric_segmentation(T, N, 4, 2.0, 3)


class TestMinimumTracks:
    def test_fully_segmented_needs_density(self):
        cs = ConnectionSet.from_spans([(1, 4), (2, 6), (5, 9), (8, 12)])
        t = minimum_tracks(
            lambda T, N: fully_segmented_channel(T, N), cs, 12
        )
        assert t == density(cs)

    def test_unsegmented_needs_m(self):
        cs = ConnectionSet.from_spans([(1, 4), (5, 8), (9, 12)])
        t = minimum_tracks(lambda T, N: unsegmented_channel(T, N), cs, 12)
        assert t == 3  # one connection per continuous track

    def test_result_is_minimal(self):
        cs = ConnectionSet.from_spans(
            [(1, 6), (2, 9), (4, 12), (7, 15), (10, 16), (13, 16)]
        )
        t = minimum_tracks(_geo, cs, 16, max_segments=2)
        # t routes:
        route(_geo(t, 16), cs, max_segments=2).validate(2)
        # t - 1 does not (if above the density floor):
        if t - 1 >= 1:
            with pytest.raises(Exception):
                route(_geo(t - 1, 16), cs, max_segments=2)

    def test_empty(self):
        assert minimum_tracks(_geo, ConnectionSet([]), 16) == 0

    def test_impossible_raises(self):
        # A connection crossing many switches with K=1 never routes in a
        # fully segmented channel, regardless of track count.
        cs = ConnectionSet.from_spans([(1, 5)])
        with pytest.raises(ReproError):
            minimum_tracks(
                lambda T, N: fully_segmented_channel(T, N),
                cs, 8, max_segments=1, limit=16,
            )

    def test_designer_monotonicity_of_builtin_families(self):
        # Adding tracks to the built-in designers only appends wire:
        # routable at T implies routable at T+1.
        cs = ConnectionSet.from_spans([(1, 6), (3, 9), (5, 12)])
        for designer in (
            _geo,
            lambda T, N: uniform_segmentation(T, N, 6),
        ):
            t = minimum_tracks(designer, cs, 12, max_segments=2, limit=32)
            for extra in (1, 2):
                route(
                    designer(t + extra, 12), cs, max_segments=2
                ).validate(2)

"""Stats helper tests."""

import math

from repro.analysis.stats import Summary, format_table, success_rate, summarize


def test_summarize_basic():
    s = summarize([1, 2, 3, 4])
    assert s.n == 4
    assert s.mean == 2.5
    assert s.minimum == 1 and s.maximum == 4


def test_summarize_empty_is_nan():
    s = summarize([])
    assert s.n == 0 and math.isnan(s.mean)


def test_summarize_singleton_zero_std():
    assert summarize([7]).std == 0.0


def test_success_rate():
    assert success_rate([True, True, False, True]) == (3, 4, 0.75)


def test_success_rate_empty():
    s, t, rate = success_rate([])
    assert (s, t) == (0, 0) and math.isnan(rate)


def test_format_table_alignment():
    text = format_table(["a", "long"], [[1, 2.0], [333, True]])
    lines = text.splitlines()
    assert len(lines) == 4  # header, rule, two rows
    assert all(len(l) == len(lines[0]) for l in lines)


def test_format_table_value_renderings():
    text = format_table(["v"], [[True], [False], [1.5], [float("nan")], ["x"]])
    assert "yes" in text and "no" in text
    assert "1.500" in text and "-" in text and "x" in text

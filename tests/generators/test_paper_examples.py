"""The paper's printed examples must exhibit their documented properties."""

import pytest

from repro.core.connection import density
from repro.core.dp import route_dp, route_dp_with_stats
from repro.core.errors import RoutingInfeasibleError
from repro.core.generalized import route_generalized
from repro.core.greedy import (
    route_one_segment_greedy,
    route_two_segment_tracks_greedy,
)
from repro.core.left_edge import route_left_edge_unconstrained
from repro.core.npc import solve_nmts
from repro.generators.paper_examples import (
    example1_nmts,
    fig2_connections,
    fig3_channel,
    fig3_connections,
    fig4_channel,
    fig4_connections,
    fig8_channel,
    fig8_connections,
)


class TestFig2:
    def test_density_two(self):
        assert density(fig2_connections()) == 2

    def test_unconstrained_achieves_density(self):
        r = route_left_edge_unconstrained(fig2_connections())
        assert r.channel.n_tracks == 2
        r.validate()


class TestFig3:
    def test_dimensions(self):
        ch = fig3_channel()
        assert (ch.n_tracks, ch.n_columns) == (3, 9)
        assert [t.n_segments for t in ch] == [3, 3, 2]
        assert len(fig3_connections()) == 5

    def test_section2_occupancy_example(self):
        # A connection spanning 2..5 occupies two segments in track 2 but
        # one segment in track 3.
        ch = fig3_channel()
        assert ch.segments_occupied(1, 2, 5) == 2
        assert ch.segments_occupied(2, 2, 5) == 1

    def test_greedy_matches_printed_assignments(self):
        r = route_one_segment_greedy(fig3_channel(), fig3_connections())
        d = r.as_dict()
        assert d["c1"] == 1  # s21
        assert d["c2"] == 2  # s31
        r.validate(max_segments=1)

    def test_fig9_frontier(self):
        # After c1, c2, c3 the frontier relative to left(c4)=6 is [7,6,6].
        ch, cs = fig3_channel(), fig3_connections()
        r = route_one_segment_greedy(ch, cs)
        blocked = [0] * 3
        for i in range(3):
            c = cs[i]
            t = r.assignment[i]
            blocked[t] = ch.segment_end_at(t, c.right)
        ref = cs[3].left
        frontier = [max(b + 1, ref) for b in blocked]
        assert frontier == [7, 6, 6]

    def test_fig10_assignment_graph_levels(self):
        _, stats = route_dp_with_stats(fig3_channel(), fig3_connections())
        assert len(stats.nodes_per_level) == 5
        assert stats.nodes_per_level[-1] == 1


class TestFig4:
    def test_single_track_infeasible(self):
        with pytest.raises(RoutingInfeasibleError):
            route_dp(fig4_channel(), fig4_connections())

    def test_generalized_feasible(self):
        g = route_generalized(fig4_channel(), fig4_connections())
        g.validate()

    def test_weaver_uses_s22_s33(self):
        ch, cs = fig4_channel(), fig4_connections()
        g = route_generalized(ch, cs)
        i = cs.index_of(cs.by_name("c4"))
        segs = {(s.track, s.left, s.right) for s in g.segments_used(i)}
        assert segs == {(1, 3, 6), (2, 6, 7)}

    def test_track3_has_four_segments(self):
        assert fig4_channel().track(2).n_segments == 4


class TestFig8:
    def test_two_segment_limit(self):
        assert fig8_channel().max_segments_per_track() == 2

    def test_walkthrough(self):
        r = route_two_segment_tracks_greedy(fig8_channel(), fig8_connections())
        assert r.as_dict() == {"c1": 0, "c2": 2, "c3": 1, "c4": 0}
        r.validate()


class TestExample1:
    def test_exact_numbers(self):
        inst = example1_nmts()
        assert inst.xs == (2, 5, 8)
        assert inst.ys == (9, 11, 12)
        assert inst.zs == (11, 17, 19)

    def test_solvable_with_paper_solution(self):
        inst = example1_nmts()
        sol = solve_nmts(inst)
        assert sol is not None
        # 1-based: alpha=(1,2,3), beta=(1,3,2).
        assert inst.check_solution((0, 1, 2), (0, 2, 1))

    def test_normalized(self):
        assert example1_nmts().is_normalized()

"""Random instance generator tests."""

import pytest

from repro.core.dp import route_dp
from repro.core.errors import ReproError
from repro.generators.random_instances import (
    random_channel,
    random_feasible_instance,
    random_uniform_instance,
)


class TestRandomChannel:
    def test_shape(self):
        ch = random_channel(5, 30, 4.0, seed=1)
        assert ch.n_tracks == 5
        assert ch.n_columns == 30

    def test_deterministic(self):
        a = random_channel(5, 30, 4.0, seed=1)
        b = random_channel(5, 30, 4.0, seed=1)
        assert a == b

    def test_seeds_differ(self):
        a = random_channel(5, 30, 4.0, seed=1)
        b = random_channel(5, 30, 4.0, seed=2)
        assert a != b

    def test_mean_length_roughly_controls_breaks(self):
        dense = random_channel(20, 100, 2.0, seed=3)
        sparse = random_channel(20, 100, 20.0, seed=3)
        assert dense.n_switches > sparse.n_switches

    def test_bad_mean(self):
        with pytest.raises(ReproError):
            random_channel(2, 10, 0.5)


class TestFeasibleInstance:
    def test_is_routable(self):
        for seed in range(5):
            ch = random_channel(5, 30, 4.0, seed=seed)
            cs = random_feasible_instance(ch, 10, seed=seed + 100)
            assert len(cs) == 10
            route_dp(ch, cs).validate()

    def test_k_limited_feasible(self):
        for seed in range(5):
            ch = random_channel(5, 30, 4.0, seed=seed)
            cs = random_feasible_instance(
                ch, 8, seed=seed + 200, max_segments=2
            )
            r = route_dp(ch, cs, max_segments=2)
            r.validate(2)

    def test_deterministic(self):
        ch = random_channel(4, 25, 4.0, seed=1)
        a = random_feasible_instance(ch, 8, seed=5)
        b = random_feasible_instance(ch, 8, seed=5)
        assert a == b

    def test_too_many_raises(self):
        ch = random_channel(1, 5, 2.0, seed=1)
        with pytest.raises(ReproError):
            random_feasible_instance(ch, 50, seed=2, max_attempts=3)

    def test_connections_within_channel(self):
        ch = random_channel(4, 20, 3.0, seed=9)
        cs = random_feasible_instance(ch, 8, seed=10)
        cs.check_within(ch)


class TestUniformInstance:
    def test_count_and_bounds(self):
        cs = random_uniform_instance(15, 40, seed=2)
        assert len(cs) == 15
        assert cs.max_column() <= 40

    def test_deterministic(self):
        assert random_uniform_instance(10, 30, seed=3) == random_uniform_instance(
            10, 30, seed=3
        )

    def test_mean_length_effect(self):
        short = random_uniform_instance(200, 100, seed=4, mean_length=2.0)
        long_ = random_uniform_instance(200, 100, seed=4, mean_length=12.0)
        assert short.total_length() < long_.total_length()


class TestNonoverlappingInstance:
    def test_pairwise_disjoint(self):
        from repro.generators.random_instances import (
            random_nonoverlapping_instance,
        )

        for seed in range(6):
            cs = random_nonoverlapping_instance(12, 60, seed=seed)
            conns = list(cs)
            for a, b in zip(conns, conns[1:]):
                assert not a.overlaps(b)

    def test_density_is_one(self):
        from repro.core.connection import density
        from repro.generators.random_instances import (
            random_nonoverlapping_instance,
        )

        cs = random_nonoverlapping_instance(10, 80, seed=3)
        assert density(cs) == 1

    def test_truncates_on_narrow_channel(self):
        from repro.generators.random_instances import (
            random_nonoverlapping_instance,
        )

        cs = random_nonoverlapping_instance(50, 12, seed=4)
        assert 1 <= len(cs) < 50
        assert cs.max_column() <= 12

    def test_deterministic(self):
        from repro.generators.random_instances import (
            random_nonoverlapping_instance,
        )

        assert random_nonoverlapping_instance(
            8, 40, seed=5
        ) == random_nonoverlapping_instance(8, 40, seed=5)

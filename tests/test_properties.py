"""Cross-algorithm property-based tests (hypothesis).

These are the library's strongest invariants, checked on generated
instances:

* every router's output passes the Definition-1/2 validators;
* all exact algorithms agree on feasibility, for every K;
* all exact optimizers agree on the optimal weight;
* the generalized router dominates single-track routing;
* serialization round-trips.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.channel import SegmentedChannel, Track
from repro.core.connection import ConnectionSet, density
from repro.core.dp import route_dp
from repro.core.dp_types import route_dp_track_types
from repro.core.errors import HeuristicFailure, RoutingInfeasibleError
from repro.core.exact import count_routings, route_exact, route_exact_optimal
from repro.core.generalized import route_generalized
from repro.core.greedy import route_one_segment_greedy
from repro.core.lp import route_lp
from repro.core.matching import one_segment_feasible, route_one_segment_matching
from repro.core.routing import occupied_length_weight
from repro.io.text_format import dumps_instance, loads_instance

N_COLS = 10


@st.composite
def channels(draw, max_tracks=3):
    n_tracks = draw(st.integers(1, max_tracks))
    tracks = []
    for _ in range(n_tracks):
        breaks = draw(
            st.lists(
                st.integers(1, N_COLS - 1), max_size=3, unique=True
            ).map(lambda xs: tuple(sorted(xs)))
        )
        tracks.append(Track(N_COLS, breaks))
    return SegmentedChannel(tracks)


@st.composite
def connection_sets(draw, max_m=4):
    m = draw(st.integers(1, max_m))
    spans = []
    for _ in range(m):
        left = draw(st.integers(1, N_COLS))
        right = draw(st.integers(left, min(N_COLS, left + 6)))
        spans.append((left, right))
    return ConnectionSet.from_spans(spans)


@st.composite
def instances(draw):
    return draw(channels()), draw(connection_sets())


class TestFeasibilityAgreement:
    @settings(max_examples=120, deadline=None)
    @given(instances(), st.sampled_from([None, 1, 2, 3]))
    def test_dp_exact_typed_agree(self, instance, k):
        channel, conns = instance
        outcomes = {}
        for name, fn in (
            ("dp", lambda: route_dp(channel, conns, max_segments=k)),
            ("exact", lambda: route_exact(channel, conns, max_segments=k)),
            (
                "typed",
                lambda: route_dp_track_types(channel, conns, max_segments=k),
            ),
        ):
            try:
                routing = fn()
                routing.validate(k)
                outcomes[name] = True
            except RoutingInfeasibleError:
                outcomes[name] = False
        assert len(set(outcomes.values())) == 1, outcomes

    @settings(max_examples=80, deadline=None)
    @given(instances())
    def test_count_zero_iff_infeasible(self, instance):
        channel, conns = instance
        count = count_routings(channel, conns)
        try:
            route_dp(channel, conns)
            feasible = True
        except RoutingInfeasibleError:
            feasible = False
        assert (count > 0) == feasible

    @settings(max_examples=80, deadline=None)
    @given(instances())
    def test_greedy1_matching_agree(self, instance):
        channel, conns = instance
        try:
            route_one_segment_greedy(channel, conns)
            greedy_ok = True
        except RoutingInfeasibleError:
            greedy_ok = False
        assert greedy_ok == one_segment_feasible(channel, conns)

    @settings(max_examples=60, deadline=None)
    @given(instances())
    def test_lp_succeeds_on_feasible(self, instance):
        channel, conns = instance
        try:
            route_dp(channel, conns)
        except RoutingInfeasibleError:
            # On infeasible instances the LP must not return a "routing".
            with pytest.raises((HeuristicFailure, RoutingInfeasibleError)):
                r = route_lp(channel, conns)
                r.validate()
            return
        # Feasible: LP may or may not succeed (heuristic), but a returned
        # routing must validate.
        try:
            route_lp(channel, conns).validate()
        except HeuristicFailure:
            pass


class TestOptimalityAgreement:
    @settings(max_examples=60, deadline=None)
    @given(instances())
    def test_dp_weighted_equals_branch_and_bound(self, instance):
        channel, conns = instance
        w = occupied_length_weight(channel)
        try:
            expected = route_exact_optimal(channel, conns, w).total_weight(w)
        except RoutingInfeasibleError:
            return
        got = route_dp(channel, conns, weight=w)
        got.validate()
        assert got.total_weight(w) == expected

    @settings(max_examples=60, deadline=None)
    @given(instances())
    def test_matching_optimal_for_k1(self, instance):
        channel, conns = instance
        w = occupied_length_weight(channel)
        try:
            expected = route_exact_optimal(
                channel, conns, w, max_segments=1
            ).total_weight(w)
        except RoutingInfeasibleError:
            return
        got = route_one_segment_matching(channel, conns, weight=w)
        got.validate(1)
        assert got.total_weight(w) == pytest.approx(expected)


class TestGeneralizedDominance:
    @settings(max_examples=60, deadline=None)
    @given(instances())
    def test_generalized_supersedes_single_track(self, instance):
        channel, conns = instance
        try:
            route_dp(channel, conns)
        except RoutingInfeasibleError:
            return
        g = route_generalized(channel, conns)
        g.validate()

    @settings(max_examples=40, deadline=None)
    @given(instances())
    def test_generalized_never_beats_capacity(self, instance):
        channel, conns = instance
        if density(conns) > channel.n_tracks:
            with pytest.raises(RoutingInfeasibleError):
                route_generalized(channel, conns)


class TestSerialization:
    @settings(max_examples=80, deadline=None)
    @given(instances())
    def test_sch_round_trip(self, instance):
        channel, conns = instance
        ch2, cs2 = loads_instance(dumps_instance(channel, conns))
        assert ch2 == channel
        assert cs2 == conns

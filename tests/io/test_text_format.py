"""`.sch` format round-trip and error-handling tests."""

import pytest

from repro.core.channel import channel_from_breaks
from repro.core.connection import ConnectionSet
from repro.core.errors import FormatError
from repro.generators.paper_examples import fig3_channel, fig3_connections
from repro.generators.random_instances import random_channel, random_feasible_instance
from repro.io.text_format import (
    dump_instance,
    dumps_instance,
    load_instance,
    loads_instance,
)


class TestRoundTrip:
    def test_fig3(self):
        ch, cs = fig3_channel(), fig3_connections()
        ch2, cs2 = loads_instance(dumps_instance(ch, cs))
        assert ch2 == ch and cs2 == cs
        assert ch2.name == "fig3"

    def test_unsegmented_track(self):
        ch = channel_from_breaks(6, [(), (3,)])
        cs = ConnectionSet.from_spans([(1, 6)])
        ch2, cs2 = loads_instance(dumps_instance(ch, cs))
        assert ch2 == ch and cs2 == cs

    def test_random_instances(self):
        for seed in range(5):
            ch = random_channel(4, 25, 4.0, seed=seed)
            cs = random_feasible_instance(ch, 8, seed=seed)
            ch2, cs2 = loads_instance(dumps_instance(ch, cs))
            assert ch2 == ch and cs2 == cs

    def test_file_round_trip(self, tmp_path):
        ch, cs = fig3_channel(), fig3_connections()
        path = tmp_path / "inst.sch"
        dump_instance(path, ch, cs)
        ch2, cs2 = load_instance(path)
        assert ch2 == ch and cs2 == cs

    def test_comments_and_blanks_ignored(self):
        text = dumps_instance(fig3_channel(), fig3_connections())
        noisy = "\n# hello\n" + text.replace(
            "connections", "# mid comment\n\nconnections"
        )
        ch2, cs2 = loads_instance(noisy)
        assert ch2 == fig3_channel()


class TestErrors:
    def test_missing_columns(self):
        with pytest.raises(FormatError, match="columns"):
            loads_instance("channel x\ntrack -\nconnections\nend\n")

    def test_track_before_columns(self):
        with pytest.raises(FormatError):
            loads_instance("track 3\ncolumns 9\nconnections\nend\n")

    def test_no_tracks(self):
        with pytest.raises(FormatError, match="track"):
            loads_instance("columns 9\nconnections\nend\n")

    def test_missing_end(self):
        with pytest.raises(FormatError, match="end"):
            loads_instance("columns 9\ntrack -\nconnections\nc1 1 2\n")

    def test_content_after_end(self):
        with pytest.raises(FormatError, match="after"):
            loads_instance("columns 9\ntrack -\nconnections\nend\nc1 1 2\n")

    def test_bad_integer(self):
        with pytest.raises(FormatError, match="integer"):
            loads_instance("columns nine\ntrack -\nconnections\nend\n")

    def test_bad_connection_line(self):
        with pytest.raises(FormatError):
            loads_instance("columns 9\ntrack -\nconnections\nc1 1\nend\n")

    def test_unknown_directive(self):
        with pytest.raises(FormatError, match="unexpected"):
            loads_instance("wat 9\n")

    def test_connection_outside_channel(self):
        with pytest.raises(Exception):
            loads_instance("columns 5\ntrack -\nconnections\nc1 1 9\nend\n")

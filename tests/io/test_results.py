"""Routing report/export tests."""

import json

from repro.core.greedy import route_one_segment_greedy
from repro.core.routing import occupied_length_weight
from repro.generators.paper_examples import fig3_channel, fig3_connections
from repro.io.results import routing_report, routing_to_csv, routing_to_json


def _routing():
    return route_one_segment_greedy(fig3_channel(), fig3_connections())


def test_report_mentions_every_connection():
    text = routing_report(_routing())
    for name in ("c1", "c2", "c3", "c4", "c5"):
        assert name in text


def test_report_with_weight_totals():
    r = _routing()
    text = routing_report(r, occupied_length_weight(r.channel))
    assert "total weight" in text


def test_csv_has_header_and_rows():
    lines = routing_to_csv(_routing()).strip().splitlines()
    assert lines[0] == "name,left,right,track,segments_used"
    assert len(lines) == 6


def test_csv_tracks_are_one_based():
    lines = routing_to_csv(_routing()).strip().splitlines()[1:]
    tracks = [int(l.split(",")[3]) for l in lines]
    assert min(tracks) >= 1


def test_json_round_trips():
    payload = json.loads(routing_to_json(_routing()))
    assert payload["channel"]["n_tracks"] == 3
    assert len(payload["connections"]) == 5
    assert payload["max_segments_used"] == 1


def test_json_contains_breaks():
    payload = json.loads(routing_to_json(_routing()))
    assert payload["channel"]["breaks"] == [[2, 6], [3, 6], [5]]


def test_json_round_trip_restores_routing():
    from repro.io.results import routing_from_json

    original = _routing()
    restored = routing_from_json(routing_to_json(original))
    assert restored.channel == original.channel
    assert restored.connections == original.connections
    assert restored.assignment == original.assignment


def test_json_loader_rejects_garbage():
    import pytest

    from repro.core.errors import FormatError
    from repro.io.results import routing_from_json

    with pytest.raises(FormatError):
        routing_from_json("not json at all {")
    with pytest.raises(FormatError):
        routing_from_json("{}")


def test_json_loader_validates_assignment():
    import json

    import pytest

    from repro.core.errors import ValidationError
    from repro.io.results import routing_from_json

    payload = json.loads(routing_to_json(_routing()))
    # Corrupt: put everything on track 1 -> conflicts.
    for rec in payload["connections"]:
        rec["track"] = 1
    with pytest.raises(ValidationError):
        routing_from_json(json.dumps(payload))

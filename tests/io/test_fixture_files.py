"""Curated `.sch` fixtures: parse from disk and behave as documented."""

from pathlib import Path

import pytest

from repro.core.capacity import diagnose
from repro.core.decompose import clean_cuts
from repro.core.dp import route_dp
from repro.core.errors import RoutingInfeasibleError
from repro.core.greedy import route_one_segment_greedy
from repro.io.text_format import dump_instance, load_instance

DATA = Path(__file__).resolve().parent.parent / "data"


def test_cluster_has_clean_cut():
    channel, conns = load_instance(DATA / "cluster.sch")
    assert clean_cuts(channel, conns) == [8]
    route_dp(channel, conns).validate()


def test_dense_routes_exactly():
    channel, conns = load_instance(DATA / "dense.sch")
    r = route_dp(channel, conns)
    r.validate()
    d = r.as_dict()
    # The two long connections (c4, c5) each consume a whole track; the
    # three short ones share the remaining (finely segmented) track 1.
    assert d["c4"] != d["c5"]
    assert d["c1"] == d["c2"] == d["c3"] == 0


def test_infeasible_diagnosed_and_proven():
    channel, conns = load_instance(DATA / "infeasible.sch")
    bottlenecks = diagnose(channel, conns)
    assert any(b.kind == "column-capacity" for b in bottlenecks)
    with pytest.raises(RoutingInfeasibleError):
        route_dp(channel, conns)


def test_one_segment_fixture_routes_at_k1():
    channel, conns = load_instance(DATA / "one_segment.sch")
    r = route_one_segment_greedy(channel, conns)
    r.validate(max_segments=1)
    assert r.max_segments_used() == 1


@pytest.mark.parametrize(
    "name", ["cluster.sch", "dense.sch", "infeasible.sch", "one_segment.sch"]
)
def test_fixtures_round_trip(name, tmp_path):
    channel, conns = load_instance(DATA / name)
    out = tmp_path / name
    dump_instance(out, channel, conns)
    ch2, cs2 = load_instance(out)
    assert ch2 == channel and cs2 == conns

"""`.net` netlist format tests."""

import pytest

from repro.core.errors import FormatError
from repro.fpga.netlist import random_netlist
from repro.io.netlist_format import (
    dump_netlist,
    dumps_netlist,
    load_netlist,
    loads_netlist,
)


def test_round_trip_random():
    for seed in range(4):
        nl = random_netlist(12, 3, seed=seed)
        nl2 = loads_netlist(dumps_netlist(nl))
        assert set(nl2.cells) == set(nl.cells)
        assert [(n.name, n.driver, n.sinks) for n in nl2.nets] == [
            (n.name, n.driver, n.sinks) for n in nl.nets
        ]


def test_file_round_trip(tmp_path):
    nl = random_netlist(8, 3, seed=5)
    path = tmp_path / "x.net"
    dump_netlist(path, nl)
    nl2 = load_netlist(path)
    assert nl2.n_nets == nl.n_nets


def test_hand_written():
    text = """
    # comment
    cell g1 3
    cell g2 2
    net n1 g1.out g2.in0 g2.in1
    end
    """
    nl = loads_netlist(text)
    assert nl.n_cells == 2
    assert nl.nets[0].fanout == 2


def test_missing_end():
    with pytest.raises(FormatError, match="end"):
        loads_netlist("cell g1 2\n")


def test_content_after_end():
    with pytest.raises(FormatError, match="after"):
        loads_netlist("cell g1 2\nend\ncell g2 2\n")


def test_bad_pin_syntax():
    for bad in ("g1", "g1.side", "g1.inx", ".out"):
        with pytest.raises(FormatError):
            loads_netlist(f"cell g1 2\ncell g2 2\nnet n1 {bad} g2.in0\nend\n")


def test_bad_cell_line():
    with pytest.raises(FormatError):
        loads_netlist("cell g1\nend\n")


def test_unknown_directive():
    with pytest.raises(FormatError, match="unexpected"):
        loads_netlist("wire w1\nend\n")


def test_semantic_errors_surface_as_format_errors():
    # Net driven by an input pin.
    with pytest.raises(FormatError):
        loads_netlist(
            "cell g1 2\ncell g2 2\nnet n1 g1.in0 g2.in0\nend\n"
        )
    # Doubly driven input.
    with pytest.raises(FormatError):
        loads_netlist(
            "cell a 2\ncell b 2\ncell c 2\n"
            "net n1 a.out c.in0\nnet n2 b.out c.in0\nend\n"
        )

"""Named-instance registry tests."""

import pytest

from repro.core.errors import ReproError
from repro.io.registry import instance_names, load_named_instance


def test_all_fixed_names_load():
    for name in ("fig2", "fig3", "fig4", "fig8", "example1-q", "example1-q2"):
        channel, conns = load_named_instance(name)
        conns.check_within(channel)
        assert len(conns) > 0


def test_example1_q_shape():
    channel, conns = load_named_instance("example1-q")
    assert channel.n_tracks == 9
    assert len(conns) == 30


def test_example1_q2_shape():
    channel, conns = load_named_instance("example1-q2")
    assert channel.n_tracks == 15


def test_fig2_is_routable_one_segment():
    from repro.core.greedy import route_one_segment_greedy

    channel, conns = load_named_instance("fig2")
    route_one_segment_greedy(channel, conns).validate(1)


def test_random_parameterized():
    channel, conns = load_named_instance("random-T5-M12-s9")
    assert channel.n_tracks == 5
    assert len(conns) == 12


def test_random_default_seed():
    a = load_named_instance("random-T4-M8")
    b = load_named_instance("random-T4-M8-s0")
    assert a == b


def test_case_insensitive_fixed_names():
    load_named_instance("FIG3")


def test_unknown_name():
    with pytest.raises(ReproError, match="known"):
        load_named_instance("fig99")


def test_names_listed():
    names = instance_names()
    assert "fig3" in names and any("random" in n for n in names)

"""Simplex tests, cross-checked against scipy.optimize.linprog (HiGHS)."""

import random

import numpy as np
import pytest
from scipy.optimize import linprog

from repro.substrate.simplex import LinearProgram, simplex_solve


def _scipy_max(c, A, b):
    res = linprog(
        c=-np.asarray(c), A_ub=np.asarray(A), b_ub=np.asarray(b),
        bounds=[(0, None)] * len(c), method="highs",
    )
    return res


class TestSimplexSolve:
    def test_simple_max(self):
        # max x + y s.t. x <= 2, y <= 3.
        res = simplex_solve([1, 1], [[1, 0], [0, 1]], [2, 3])
        assert res.ok
        assert res.objective == pytest.approx(5.0)
        assert res.x.tolist() == pytest.approx([2.0, 3.0])

    def test_shared_resource(self):
        # max x + y s.t. x + y <= 1.
        res = simplex_solve([1, 1], [[1, 1]], [1])
        assert res.objective == pytest.approx(1.0)

    def test_unbounded(self):
        res = simplex_solve([1.0], np.zeros((1, 1)), [5.0])
        # x has no binding constraint (0*x <= 5): unbounded.
        assert res.status == "unbounded"

    def test_negative_rhs_rejected(self):
        with pytest.raises(ValueError):
            simplex_solve([1], [[1]], [-1])

    def test_zero_objective(self):
        res = simplex_solve([0, 0], [[1, 1]], [1])
        assert res.ok and res.objective == pytest.approx(0.0)

    def test_degenerate_does_not_cycle(self):
        # Classic degeneracy: multiple zero-rhs rows; Bland's rule must
        # terminate.
        A = [[1, 1, 0], [1, 0, 1], [0, 1, 1]]
        b = [0, 0, 1]
        res = simplex_solve([1, 1, 1], A, b)
        assert res.ok

    def test_against_scipy_random(self):
        rng = random.Random(3)
        for _ in range(40):
            n = rng.randint(1, 6)
            m = rng.randint(1, 6)
            A = [[rng.uniform(0, 4) for _ in range(n)] for _ in range(m)]
            b = [rng.uniform(0.5, 8) for _ in range(m)]
            c = [rng.uniform(-1, 3) for _ in range(n)]
            # guarantee boundedness: add a box row for each variable
            for j in range(n):
                row = [0.0] * n
                row[j] = 1.0
                A.append(row)
                b.append(10.0)
            mine = simplex_solve(c, A, b)
            ref = _scipy_max(c, A, b)
            assert mine.ok and ref.status == 0
            assert mine.objective == pytest.approx(-ref.fun, abs=1e-6)
            # feasibility of our solution
            assert (np.asarray(A) @ mine.x <= np.asarray(b) + 1e-7).all()
            assert (mine.x >= -1e-9).all()


class TestLinearProgramBuilder:
    def test_build_and_solve(self):
        lp = LinearProgram()
        lp.variable("x", objective=1.0)
        lp.variable("y", objective=2.0)
        lp.add_le({"x": 1.0, "y": 1.0}, 4.0)
        lp.add_le({"y": 1.0}, 1.0)
        result, values = lp.solve()
        assert result.ok
        assert values["y"] == pytest.approx(1.0)
        assert values["x"] == pytest.approx(3.0)

    def test_objective_accumulates(self):
        lp = LinearProgram()
        lp.variable("x", objective=1.0)
        lp.variable("x", objective=1.0)  # now 2x
        lp.add_le({"x": 1.0}, 3.0)
        result, values = lp.solve()
        assert result.objective == pytest.approx(6.0)

    def test_negative_rhs_rejected(self):
        lp = LinearProgram()
        with pytest.raises(ValueError):
            lp.add_le({"x": 1.0}, -1.0)

    def test_counts(self):
        lp = LinearProgram()
        lp.variable("a")
        lp.add_le({"a": 1.0, "b": 2.0}, 1.0)
        assert lp.n_variables == 2
        assert lp.n_constraints == 1

    def test_routing_shape_lp(self):
        # A miniature of the routing LP: 2 connections, 2 tracks, one
        # conflicting segment.
        lp = LinearProgram()
        for i in range(2):
            for t in range(2):
                lp.variable((i, t), objective=1.0)
        lp.add_le({(0, 0): 1.0, (0, 1): 1.0}, 1.0)
        lp.add_le({(1, 0): 1.0, (1, 1): 1.0}, 1.0)
        lp.add_le({(0, 0): 1.0, (1, 0): 1.0}, 1.0)  # shared segment on t0
        result, values = lp.solve()
        assert result.objective == pytest.approx(2.0)
        # An integral optimum exists; simplex should land on a vertex.
        assert all(
            v <= 1e-7 or v >= 1 - 1e-7 for v in values.values()
        )


class TestScale:
    def test_routing_shaped_lp_at_paper_scale(self):
        """A full M=60, T=25 routing relaxation solved by our simplex must
        agree with scipy's HiGHS on the optimum."""
        from repro.core.lp import build_routing_lp
        from repro.design.segmentation import staggered_uniform_segmentation
        from repro.generators.random_instances import random_feasible_instance

        ch = staggered_uniform_segmentation(25, 80, 8)
        cs = random_feasible_instance(ch, 60, seed=77, mean_length=8.0)
        lp, keys = build_routing_lp(ch, cs)
        result, values = lp.solve()
        assert result.ok

        # scipy cross-check on the same matrices.
        import numpy as np

        n = lp.n_variables
        m = lp.n_constraints
        A = np.zeros((m, n))
        for ri, row in enumerate(lp._rows):
            for k, coef in row.items():
                A[ri, lp._var_index[k]] = coef
        b = np.array(lp._rhs)
        c = np.zeros(n)
        for k, coef in lp._objective.items():
            c[lp._var_index[k]] = coef
        ref = linprog(-c, A_ub=A, b_ub=b, bounds=[(0, None)] * n,
                      method="highs")
        assert ref.status == 0
        assert result.objective == pytest.approx(-ref.fun, abs=1e-5)

    def test_random_dense_lps_vs_scipy(self):
        rng = random.Random(55)
        for _ in range(5):
            n, m = rng.randint(10, 25), rng.randint(10, 25)
            A = [[rng.uniform(0, 2) for _ in range(n)] for _ in range(m)]
            b = [rng.uniform(1, 10) for _ in range(m)]
            c = [rng.uniform(0, 2) for _ in range(n)]
            for j in range(n):
                row = [0.0] * n
                row[j] = 1.0
                A.append(row)
                b.append(5.0)
            mine = simplex_solve(c, A, b)
            ref = _scipy_max(c, A, b)
            assert mine.ok and ref.status == 0
            assert mine.objective == pytest.approx(-ref.fun, abs=1e-6)

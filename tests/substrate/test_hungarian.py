"""Hungarian algorithm tests, cross-checked against scipy."""

import math
import random

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from scipy.optimize import linear_sum_assignment

from repro.substrate.hungarian import AssignmentInfeasible, hungarian


class TestBasics:
    def test_identity(self):
        total, assign = hungarian([[1.0, 9.0], [9.0, 1.0]])
        assert total == 2.0
        assert assign == [0, 1]

    def test_cross(self):
        total, assign = hungarian([[9.0, 1.0], [1.0, 9.0]])
        assert total == 2.0
        assert assign == [1, 0]

    def test_rectangular(self):
        total, assign = hungarian([[5.0, 1.0, 3.0]])
        assert total == 1.0
        assert assign == [1]

    def test_empty(self):
        assert hungarian([]) == (0.0, [])

    def test_rows_exceed_columns(self):
        with pytest.raises(ValueError):
            hungarian([[1.0], [2.0]])

    def test_ragged(self):
        with pytest.raises(ValueError):
            hungarian([[1.0, 2.0], [1.0]])

    def test_forbidden_edges(self):
        inf = math.inf
        total, assign = hungarian([[inf, 1.0], [1.0, inf]])
        assert total == 2.0
        assert assign == [1, 0]

    def test_infeasible(self):
        inf = math.inf
        with pytest.raises(AssignmentInfeasible):
            hungarian([[inf, inf], [1.0, 2.0]])

    def test_infeasible_shared_column(self):
        inf = math.inf
        with pytest.raises(AssignmentInfeasible):
            hungarian([[1.0, inf], [2.0, inf]])


class TestVsScipy:
    def test_random_square(self):
        rng = random.Random(7)
        for _ in range(40):
            n = rng.randint(1, 7)
            cost = [[rng.uniform(0, 10) for _ in range(n)] for _ in range(n)]
            total, assign = hungarian(cost)
            rows, cols = linear_sum_assignment(np.array(cost))
            expected = float(np.array(cost)[rows, cols].sum())
            assert total == pytest.approx(expected)
            assert sorted(assign) == sorted(cols.tolist())

    def test_random_rectangular(self):
        rng = random.Random(8)
        for _ in range(40):
            n = rng.randint(1, 5)
            m = rng.randint(n, 8)
            cost = [[rng.uniform(0, 10) for _ in range(m)] for _ in range(n)]
            total, _ = hungarian(cost)
            rows, cols = linear_sum_assignment(np.array(cost))
            expected = float(np.array(cost)[rows, cols].sum())
            assert total == pytest.approx(expected)

    def test_negative_costs(self):
        rng = random.Random(9)
        for _ in range(20):
            n = rng.randint(2, 5)
            cost = [
                [rng.uniform(-5, 5) for _ in range(n)] for _ in range(n)
            ]
            total, _ = hungarian(cost)
            rows, cols = linear_sum_assignment(np.array(cost))
            assert total == pytest.approx(float(np.array(cost)[rows, cols].sum()))

    @settings(max_examples=50, deadline=None)
    @given(
        st.integers(1, 4).flatmap(
            lambda n: st.lists(
                st.lists(
                    st.integers(0, 20).map(float), min_size=n + 1, max_size=n + 1
                ),
                min_size=n,
                max_size=n,
            )
        )
    )
    def test_hypothesis_vs_scipy(self, cost):
        total, assign = hungarian(cost)
        rows, cols = linear_sum_assignment(np.array(cost))
        assert total == pytest.approx(float(np.array(cost)[rows, cols].sum()))
        assert len(set(assign)) == len(assign)  # injective

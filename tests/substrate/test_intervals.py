"""Interval utility tests."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.substrate.intervals import (
    intervals_overlap,
    merge_intervals,
    pack_intervals_left_edge,
    sweep_density,
)

spans = st.tuples(st.integers(1, 20), st.integers(0, 8)).map(
    lambda t: (t[0], t[0] + t[1])
)


class TestOverlap:
    def test_overlap(self):
        assert intervals_overlap((1, 4), (4, 8))
        assert not intervals_overlap((1, 4), (5, 8))
        assert intervals_overlap((2, 9), (3, 4))


class TestMerge:
    def test_empty(self):
        assert merge_intervals([]) == []

    def test_disjoint_kept(self):
        assert merge_intervals([(5, 6), (1, 2)]) == [(1, 2), (5, 6)]

    def test_adjacent_merged(self):
        assert merge_intervals([(1, 2), (3, 4)]) == [(1, 4)]

    def test_overlapping_merged(self):
        assert merge_intervals([(1, 5), (4, 9), (8, 10)]) == [(1, 10)]

    def test_empty_interval_rejected(self):
        with pytest.raises(ValueError):
            merge_intervals([(3, 2)])

    @settings(max_examples=60, deadline=None)
    @given(st.lists(spans, max_size=10))
    def test_merge_covers_same_points(self, intervals):
        merged = merge_intervals(intervals)
        covered = {
            p for l, r in intervals for p in range(l, r + 1)
        }
        covered_merged = {
            p for l, r in merged for p in range(l, r + 1)
        }
        assert covered == covered_merged
        # merged intervals are disjoint and non-adjacent
        for a, b in zip(merged, merged[1:]):
            assert a[1] + 1 < b[0]


class TestDensity:
    def test_empty(self):
        assert sweep_density([]) == 0

    def test_point_stack(self):
        assert sweep_density([(3, 3)] * 5) == 5

    @settings(max_examples=60, deadline=None)
    @given(st.lists(spans, max_size=10))
    def test_matches_pointwise_max(self, intervals):
        expected = 0
        for p in range(1, 30):
            expected = max(
                expected, sum(1 for l, r in intervals if l <= p <= r)
            )
        assert sweep_density(intervals) == expected


class TestPack:
    def test_rows_equal_density(self):
        intervals = [(1, 4), (2, 6), (5, 9), (7, 9)]
        n_rows, row_of = pack_intervals_left_edge(intervals)
        assert n_rows == sweep_density(intervals)

    def test_assignment_conflict_free(self):
        rng = random.Random(4)
        for _ in range(30):
            intervals = []
            for _ in range(rng.randint(1, 15)):
                l = rng.randint(1, 20)
                intervals.append((l, l + rng.randint(0, 6)))
            n_rows, row_of = pack_intervals_left_edge(intervals)
            assert n_rows == sweep_density(intervals)
            by_row = {}
            for i, row in enumerate(row_of):
                for other in by_row.get(row, []):
                    assert not intervals_overlap(intervals[i], intervals[other])
                by_row.setdefault(row, []).append(i)

    def test_empty(self):
        assert pack_intervals_left_edge([]) == (0, [])

    @settings(max_examples=50, deadline=None)
    @given(st.lists(spans, max_size=12))
    def test_hypothesis_density_optimal(self, intervals):
        n_rows, row_of = pack_intervals_left_edge(intervals)
        assert n_rows == sweep_density(intervals)
        assert len(row_of) == len(intervals)

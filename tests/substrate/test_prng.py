"""PRNG helper tests."""

import random

from repro.substrate.prng import rng_from, spawn


def test_same_seed_same_stream():
    assert rng_from(42).random() == rng_from(42).random()


def test_existing_rng_passthrough():
    rng = random.Random(1)
    assert rng_from(rng) is rng


def test_none_gives_rng():
    assert isinstance(rng_from(None), random.Random)


def test_spawn_reproducible():
    a = spawn(random.Random(7), "stream")
    b = spawn(random.Random(7), "stream")
    assert a.random() == b.random()


def test_spawn_streams_differ():
    base = random.Random(7)
    a = spawn(base, "x")
    base2 = random.Random(7)
    b = spawn(base2, "y")
    assert a.random() != b.random()

"""Hopcroft–Karp tests, cross-checked against networkx."""

import random

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.substrate.bipartite import hopcroft_karp, maximum_bipartite_matching


def _nx_matching_size(n_left, n_right, adjacency):
    g = nx.Graph()
    g.add_nodes_from((f"L{u}" for u in range(n_left)), bipartite=0)
    g.add_nodes_from((f"R{v}" for v in range(n_right)), bipartite=1)
    for u, nbrs in enumerate(adjacency):
        for v in nbrs:
            g.add_edge(f"L{u}", f"R{v}")
    matching = nx.bipartite.maximum_matching(
        g, top_nodes=[f"L{u}" for u in range(n_left)]
    )
    return len(matching) // 2


class TestHopcroftKarp:
    def test_perfect_matching(self):
        size, ml, mr = hopcroft_karp(2, 2, [[0, 1], [1]])
        assert size == 2
        assert ml == [0, 1]

    def test_blocked(self):
        size, ml, _ = hopcroft_karp(2, 2, [[0], [0]])
        assert size == 1

    def test_empty_graph(self):
        size, ml, mr = hopcroft_karp(3, 2, [[], [], []])
        assert size == 0
        assert ml == [-1, -1, -1]

    def test_no_vertices(self):
        assert hopcroft_karp(0, 0, [])[0] == 0

    def test_bad_adjacency_length(self):
        with pytest.raises(ValueError):
            hopcroft_karp(2, 2, [[0]])

    def test_bad_right_index(self):
        with pytest.raises(ValueError):
            hopcroft_karp(1, 2, [[2]])

    def test_matching_is_consistent(self):
        size, ml, mr = hopcroft_karp(3, 3, [[0, 1], [0, 2], [1]])
        assert size == 3
        for u, v in enumerate(ml):
            if v != -1:
                assert mr[v] == u

    def test_against_networkx_random(self):
        rng = random.Random(1)
        for _ in range(50):
            n_left = rng.randint(1, 8)
            n_right = rng.randint(1, 8)
            adjacency = [
                sorted(
                    rng.sample(range(n_right), rng.randint(0, n_right))
                )
                for _ in range(n_left)
            ]
            size, _, _ = hopcroft_karp(n_left, n_right, adjacency)
            assert size == _nx_matching_size(n_left, n_right, adjacency)

    @settings(max_examples=60, deadline=None)
    @given(
        st.lists(
            st.lists(st.integers(0, 5), max_size=6).map(
                lambda xs: sorted(set(xs))
            ),
            min_size=1,
            max_size=6,
        )
    )
    def test_hypothesis_against_networkx(self, adjacency):
        n_left = len(adjacency)
        n_right = 6
        size, ml, mr = hopcroft_karp(n_left, n_right, adjacency)
        assert size == _nx_matching_size(n_left, n_right, adjacency)
        # matched edges exist in the graph
        for u, v in enumerate(ml):
            if v != -1:
                assert v in adjacency[u]


class TestLabelWrapper:
    def test_labels(self):
        m = maximum_bipartite_matching({"a": ["x"], "b": ["x", "y"]})
        assert m["a"] == "x"
        assert m["b"] == "y"

    def test_partial(self):
        m = maximum_bipartite_matching({"a": ["x"], "b": ["x"]})
        assert len(m) == 1

    def test_empty(self):
        assert maximum_bipartite_matching({}) == {}

"""Stochastic traffic model tests."""

import pytest

from repro.core.connection import density
from repro.core.errors import ReproError
from repro.design.stochastic import TrafficModel, sample_connections


def test_parameters_validated():
    with pytest.raises(ReproError):
        TrafficModel(lam=0, mean_length=4)
    with pytest.raises(ReproError):
        TrafficModel(lam=0.5, mean_length=0.5)


def test_expected_density():
    assert TrafficModel(0.5, 6).expected_density == 3.0


def test_sampling_deterministic():
    tm = TrafficModel(0.4, 5)
    assert sample_connections(tm, 50, seed=1) == sample_connections(tm, 50, seed=1)


def test_connections_within_channel():
    tm = TrafficModel(0.6, 8)
    cs = sample_connections(tm, 40, seed=2)
    assert all(1 <= c.left <= c.right <= 40 for c in cs)


def test_mean_density_tracks_expectation():
    tm = TrafficModel(0.5, 6)
    densities = [
        density(sample_connections(tm, 60, seed=s)) for s in range(30)
    ]
    mean = sum(densities) / len(densities)
    # Max-over-columns exceeds the per-column mean; just sanity-band it.
    assert tm.expected_density * 0.8 <= mean <= tm.expected_density * 3.0


def test_mean_length_tracks_parameter():
    tm = TrafficModel(0.3, 10)
    cs = sample_connections(tm, 200, seed=3)
    mean_len = cs.total_length() / len(cs)
    assert 6 <= mean_len <= 14  # geometric mean 10, truncated at the edge


def test_higher_lam_more_connections():
    lo = sample_connections(TrafficModel(0.2, 5), 100, seed=4)
    hi = sample_connections(TrafficModel(1.0, 5), 100, seed=4)
    assert len(hi) > len(lo)

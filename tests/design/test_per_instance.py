"""Per-instance (clairvoyant) segmentation tests — the Fig. 2(e)/(f)
constructions must achieve their guarantees on arbitrary inputs."""

import random

from repro.core.connection import ConnectionSet, density
from repro.core.dp import route_dp
from repro.core.greedy import route_one_segment_greedy
from repro.design.per_instance import (
    segmentation_for_instance,
    segmentation_for_two_segment,
)


def _random_sets(seed, n=25):
    rng = random.Random(seed)
    out = []
    for _ in range(n):
        spans = []
        for _ in range(rng.randint(1, 12)):
            l = rng.randint(1, 20)
            spans.append((l, min(24, l + rng.randint(0, 8))))
        out.append(ConnectionSet.from_spans(spans))
    return out


class TestOneSegment:
    def test_density_tracks_and_one_segment(self):
        for cs in _random_sets(1):
            ch = segmentation_for_instance(cs, 24)
            assert ch.n_tracks == density(cs)
            r = route_one_segment_greedy(ch, cs)
            r.validate(max_segments=1)
            assert r.max_segments_used() == 1

    def test_fig2_instance(self):
        from repro.generators.paper_examples import fig2_connections

        cs = fig2_connections()
        ch = segmentation_for_instance(cs, 16)
        assert ch.n_tracks == 2  # the density
        route_one_segment_greedy(ch, cs).validate(1)

    def test_single_connection(self):
        cs = ConnectionSet.from_spans([(3, 8)])
        ch = segmentation_for_instance(cs, 10)
        assert ch.n_tracks == 1
        assert ch.track(0).breaks == ()  # nothing to separate


class TestTwoSegment:
    def test_two_segment_routable_at_density(self):
        for cs in _random_sets(2):
            ch = segmentation_for_two_segment(cs, 24)
            assert ch.n_tracks == density(cs)
            r = route_dp(ch, cs, max_segments=2)
            r.validate(2)

    def test_fewer_switches_than_one_segment_design(self):
        for cs in _random_sets(3, n=10):
            one = segmentation_for_instance(cs, 24)
            two = segmentation_for_two_segment(cs, 24)
            assert two.n_switches <= one.n_switches

"""Segmentation designer tests."""

import pytest

from repro.core.errors import ReproError
from repro.design.segmentation import (
    design_for_lengths,
    geometric_segmentation,
    staggered_uniform_segmentation,
    uniform_segmentation,
)


class TestUniform:
    def test_identical_tracks(self):
        ch = uniform_segmentation(4, 24, 6)
        assert ch.is_identically_segmented()
        assert ch.track(0).n_segments == 4

    def test_bad_period(self):
        with pytest.raises(ReproError):
            uniform_segmentation(2, 10, 0)


class TestStaggered:
    def test_phases_cycle(self):
        ch = staggered_uniform_segmentation(4, 24, 8)
        assert len({t.breaks for t in ch}) > 1

    def test_all_columns_covered(self):
        ch = staggered_uniform_segmentation(6, 30, 5)
        assert ch.n_columns == 30
        for t in ch:
            assert all(1 <= b < 30 for b in t.breaks)


class TestGeometric:
    def test_type_count(self):
        ch = geometric_segmentation(8, 64, shortest=4, ratio=2.0, n_types=4)
        assert len(ch.track_types()) >= 3  # types may merge when capped

    def test_lengths_grow(self):
        ch = geometric_segmentation(4, 64, shortest=4, ratio=2.0, n_types=4)
        # track 0 is type 0 (short segments), track 3 type 3 (long).
        seg0 = ch.track(0).segment_bounds[0]
        seg3 = ch.track(3).segment_bounds[0]
        assert (seg3[1] - seg3[0]) > (seg0[1] - seg0[0])

    def test_parameter_validation(self):
        with pytest.raises(ReproError):
            geometric_segmentation(4, 64, shortest=0)
        with pytest.raises(ReproError):
            geometric_segmentation(4, 64, ratio=1.0)

    def test_long_type_has_few_switches(self):
        ch = geometric_segmentation(8, 64, shortest=4, ratio=3.0, n_types=3)
        per_track = [len(t.breaks) for t in ch]
        assert min(per_track) < max(per_track)


class TestDesignForLengths:
    def test_track_count_exact(self):
        lengths = [2] * 30 + [8] * 10 + [20] * 5
        ch = design_for_lengths(9, 40, lengths, n_types=3)
        assert ch.n_tracks == 9

    def test_empty_sample_rejected(self):
        with pytest.raises(ReproError):
            design_for_lengths(4, 40, [])

    def test_segments_match_sample_quantiles(self):
        lengths = [3] * 50
        ch = design_for_lengths(4, 30, lengths, n_types=1)
        # All one class with ~80th percentile 3: segments of length 3.
        assert all(
            seg[1] - seg[0] + 1 <= 3 or seg[1] == 30
            for t in ch
            for seg in t.segment_bounds
        )

    def test_long_traffic_gets_long_segments(self):
        short_heavy = design_for_lengths(6, 60, [3] * 90 + [30] * 3, n_types=2)
        long_heavy = design_for_lengths(6, 60, [3] * 3 + [30] * 90, n_types=2)
        assert short_heavy.n_switches > long_heavy.n_switches

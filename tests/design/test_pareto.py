"""Pareto design-space exploration tests."""

from repro.design.pareto import DesignPoint, explore_design_space, pareto_front
from repro.design.segmentation import (
    staggered_uniform_segmentation,
    uniform_segmentation,
)
from repro.design.stochastic import TrafficModel


class TestDominance:
    def test_strict_dominance(self):
        a = DesignPoint("a", 10, 0.1, 0.9)
        b = DesignPoint("b", 20, 0.2, 0.5)
        assert a.dominates(b)
        assert not b.dominates(a)

    def test_equal_points_do_not_dominate(self):
        a = DesignPoint("a", 10, 0.1, 0.9)
        b = DesignPoint("b", 10, 0.1, 0.9)
        assert not a.dominates(b)
        assert not b.dominates(a)

    def test_tradeoff_points_incomparable(self):
        cheap = DesignPoint("cheap", 5, 0.1, 0.4)
        good = DesignPoint("good", 40, 0.4, 0.95)
        assert not cheap.dominates(good)
        assert not good.dominates(cheap)


class TestFront:
    def test_front_is_nondominated(self):
        points = [
            DesignPoint("a", 0, 0.0, 0.0),
            DesignPoint("b", 10, 0.1, 0.5),
            DesignPoint("c", 10, 0.1, 0.3),   # dominated by b
            DesignPoint("d", 50, 0.5, 0.9),
            DesignPoint("e", 60, 0.6, 0.8),   # dominated by d
        ]
        front = pareto_front(points)
        labels = [p.label for p in front]
        assert labels == ["a", "b", "d"]

    def test_empty(self):
        assert pareto_front([]) == []

    def test_front_sorted_by_switches(self):
        points = [
            DesignPoint("x", 30, 0.3, 0.8),
            DesignPoint("y", 5, 0.05, 0.2),
        ]
        front = pareto_front(points)
        assert [p.label for p in front] == ["y", "x"]


class TestExplore:
    def test_explore_scores_all_candidates(self):
        tm = TrafficModel(0.4, 4)
        candidates = [
            ("u6", lambda T, N: uniform_segmentation(T, N, 6)),
            ("s6", lambda T, N: staggered_uniform_segmentation(T, N, 6)),
        ]
        points = explore_design_space(
            candidates, 6, tm, 30, n_trials=6, max_segments=2, seed=2
        )
        assert [p.label for p in points] == ["u6", "s6"]
        for p in points:
            assert 0.0 <= p.probability <= 1.0
            assert p.n_switches > 0

    def test_deterministic(self):
        tm = TrafficModel(0.4, 4)
        candidates = [("u6", lambda T, N: uniform_segmentation(T, N, 6))]
        a = explore_design_space(candidates, 6, tm, 30, 5, seed=3)
        b = explore_design_space(candidates, 6, tm, 30, 5, seed=3)
        assert a == b

"""First-order analytic model tests."""

import pytest

from repro.core.errors import ReproError
from repro.design.analytic import SegmentTypeSpec, analytic_routing_probability
from repro.design.stochastic import TrafficModel


def test_spec_validation():
    with pytest.raises(ReproError):
        SegmentTypeSpec(-1, 4)
    with pytest.raises(ReproError):
        SegmentTypeSpec(2, 0)


def test_needs_types():
    with pytest.raises(ReproError):
        analytic_routing_probability([], TrafficModel(0.5, 3), 40)


def test_probability_in_unit_interval():
    p = analytic_routing_probability(
        [SegmentTypeSpec(6, 8)], TrafficModel(0.5, 4), 40
    )
    assert 0.0 <= p <= 1.0


def test_monotone_in_tracks():
    tm = TrafficModel(0.5, 3)
    probs = [
        analytic_routing_probability([SegmentTypeSpec(T, 10)], tm, 40)
        for T in (2, 4, 8, 16)
    ]
    assert probs == sorted(probs)


def test_monotone_in_load():
    probs = [
        analytic_routing_probability(
            [SegmentTypeSpec(8, 10)], TrafficModel(lam, 3), 40
        )
        for lam in (0.2, 0.5, 1.0, 2.0)
    ]
    assert probs == sorted(probs, reverse=True)


def test_segments_too_short_give_zero():
    # Mean length 6 but all segments length 2: most connections fit no
    # segment at all.
    p = analytic_routing_probability(
        [SegmentTypeSpec(50, 2)], TrafficModel(0.5, 6), 40
    )
    assert p < 0.05


def test_multi_type_beats_short_only():
    tm = TrafficModel(0.4, 5)
    short_only = analytic_routing_probability([SegmentTypeSpec(8, 4)], tm, 40)
    mixed = analytic_routing_probability(
        [SegmentTypeSpec(4, 4), SegmentTypeSpec(4, 16)], tm, 40
    )
    assert mixed > short_only


def test_zero_traffic_limit():
    p = analytic_routing_probability(
        [SegmentTypeSpec(4, 40)], TrafficModel(0.0001, 2), 40
    )
    assert p > 0.99

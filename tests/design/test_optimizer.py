"""Segmentation optimizer tests."""

import pytest

from repro.core.errors import ReproError
from repro.design.optimizer import optimize_geometric_design
from repro.design.stochastic import TrafficModel


def test_finds_design_meeting_target():
    tm = TrafficModel(lam=0.4, mean_length=5)
    design = optimize_geometric_design(
        tm, 36, target_probability=0.8, max_tracks=16, n_trials=8,
        shortest_options=(4,), ratio_options=(2.0,), type_options=(3,),
        seed=1,
    )
    assert design.probability >= 0.8
    channel = design.build(36)
    assert channel.n_tracks == design.n_tracks


def test_uses_few_tracks():
    tm = TrafficModel(lam=0.3, mean_length=5)
    design = optimize_geometric_design(
        tm, 36, target_probability=0.7, max_tracks=20, n_trials=8,
        shortest_options=(4,), ratio_options=(2.0,), type_options=(3,),
        seed=2,
    )
    # Expected density is 1.5; a handful of tracks must suffice.
    assert design.n_tracks <= 10


def test_unreachable_target_raises():
    tm = TrafficModel(lam=1.5, mean_length=8)  # expected density 12
    with pytest.raises(ReproError):
        optimize_geometric_design(
            tm, 36, target_probability=0.99, max_tracks=3, n_trials=4,
            shortest_options=(4,), ratio_options=(2.0,), type_options=(2,),
            seed=3,
        )


def test_bad_target_rejected():
    tm = TrafficModel(lam=0.3, mean_length=5)
    with pytest.raises(ReproError):
        optimize_geometric_design(tm, 36, target_probability=0.0)


def test_deterministic():
    tm = TrafficModel(lam=0.4, mean_length=5)
    kwargs = dict(
        target_probability=0.7, max_tracks=14, n_trials=6,
        shortest_options=(4, 6), ratio_options=(2.0,), type_options=(2, 3),
        seed=4,
    )
    a = optimize_geometric_design(tm, 36, **kwargs)
    b = optimize_geometric_design(tm, 36, **kwargs)
    assert a == b

"""Design-evaluation (Monte-Carlo) tests."""

from repro.design.evaluate import (
    routing_probability,
    track_overhead_vs_unconstrained,
)
from repro.design.segmentation import geometric_segmentation
from repro.design.stochastic import TrafficModel


def _designer(T, N):
    return geometric_segmentation(T, N, shortest=4, ratio=2.0, n_types=3)


def test_probability_monotone_in_tracks():
    tm = TrafficModel(0.4, 6)
    rows = routing_probability(
        _designer, [3, 6, 9], tm, 40, 12, max_segments=2, seed=1
    )
    probs = [r.probability for r in rows]
    # Common random numbers make the curve monotone.
    assert probs == sorted(probs)


def test_probability_reaches_one_with_enough_tracks():
    tm = TrafficModel(0.3, 5)
    rows = routing_probability(_designer, [14], tm, 30, 10, seed=2)
    assert rows[0].probability == 1.0


def test_rows_record_trials():
    tm = TrafficModel(0.3, 5)
    rows = routing_probability(_designer, [4], tm, 30, 7, seed=3)
    assert rows[0].trials == 7
    assert 0 <= rows[0].successes <= 7


def test_overhead_rows_structure():
    tm = TrafficModel(0.4, 6)
    rows = track_overhead_vs_unconstrained(
        _designer, tm, 40, 8, max_segments=2, seed=4
    )
    for d, needed, overhead in rows:
        assert needed >= d
        assert overhead == needed - d


def test_overhead_small_for_good_design():
    tm = TrafficModel(0.4, 6)
    rows = track_overhead_vs_unconstrained(
        _designer, tm, 40, 10, max_segments=2, seed=5
    )
    mean_overhead = sum(o for _, _, o in rows) / len(rows)
    assert mean_overhead <= 4.0  # "a few tracks more"

"""Second round of cross-cutting property tests: incremental routing,
bitstreams, diagnostics, heuristics, and persistence."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.capacity import diagnose
from repro.core.channel import SegmentedChannel, Track
from repro.core.connection import Connection, ConnectionSet
from repro.core.dp import route_dp
from repro.core.errors import (
    HeuristicFailure,
    RoutingInfeasibleError,
    ValidationError,
)
from repro.core.heuristics import route_best_fit, route_first_fit
from repro.core.incremental import insert_connection, remove_connection
from repro.core.routing import Routing
from repro.fpga.bitstream import extract_bitstream
from repro.io.results import routing_from_json, routing_to_json

N_COLS = 10


@st.composite
def channels(draw, max_tracks=3):
    n_tracks = draw(st.integers(1, max_tracks))
    tracks = []
    for _ in range(n_tracks):
        breaks = draw(
            st.lists(st.integers(1, N_COLS - 1), max_size=3, unique=True).map(
                lambda xs: tuple(sorted(xs))
            )
        )
        tracks.append(Track(N_COLS, breaks))
    return SegmentedChannel(tracks)


@st.composite
def connection_sets(draw, max_m=4):
    m = draw(st.integers(1, max_m))
    spans = []
    for _ in range(m):
        left = draw(st.integers(1, N_COLS))
        right = draw(st.integers(left, min(N_COLS, left + 6)))
        spans.append((left, right))
    return ConnectionSet.from_spans(spans)


@st.composite
def routed_instances(draw):
    """(channel, routing) pairs for instances that are actually routable."""
    channel = draw(channels())
    conns = draw(connection_sets())
    try:
        routing = route_dp(channel, conns)
    except RoutingInfeasibleError:
        return None
    return channel, routing


class TestIncrementalProperties:
    @settings(max_examples=80, deadline=None)
    @given(routed_instances(), st.integers(1, N_COLS), st.integers(0, 5))
    def test_insert_agrees_with_scratch(self, pair, left, extra):
        if pair is None:
            return
        channel, routing = pair
        right = min(N_COLS, left + extra)
        new = Connection(left, right, "zz_new")
        enlarged = ConnectionSet(list(routing.connections) + [new])
        try:
            route_dp(channel, enlarged)
            should = True
        except RoutingInfeasibleError:
            should = False
        try:
            out = insert_connection(routing, new)
            out.validate()
            got = True
        except RoutingInfeasibleError:
            got = False
        assert got == should

    @settings(max_examples=50, deadline=None)
    @given(routed_instances())
    def test_remove_then_validate(self, pair):
        if pair is None:
            return
        channel, routing = pair
        victim = routing.connections[0]
        out = remove_connection(routing, victim)
        out.validate()
        assert len(out.connections) == len(routing.connections) - 1


class TestBitstreamProperties:
    @settings(max_examples=80, deadline=None)
    @given(routed_instances())
    def test_switch_counts(self, pair):
        if pair is None:
            return
        channel, routing = pair
        bs = extract_bitstream(routing)
        # Cross switches: 2 per connection (1 for single-column spans).
        expected_cross = sum(
            1 if c.left == c.right else 2 for c in routing.connections
        )
        # Distinct connections may share a cross location only if they are
        # on different tracks, so counting by (track, col) set:
        assert bs.n_cross() <= expected_cross
        # Track switches equal total joined breaks.
        expected_track = sum(
            sum(
                1
                for b in channel.track(t).breaks
                if c.left <= b < c.right
            )
            for c, t in zip(routing.connections, routing.assignment)
        )
        assert bs.n_track() == expected_track

    @settings(max_examples=50, deadline=None)
    @given(routed_instances())
    def test_per_connection_switches_match_segments(self, pair):
        # A connection occupying k segments programs exactly k-1 track
        # switches (the paper's join-count argument).
        if pair is None:
            return
        channel, routing = pair
        bs = extract_bitstream(routing)
        per_conn_track = {}
        for ref in bs.switches:
            if ref.kind == "track":
                per_conn_track[bs.owner[ref]] = (
                    per_conn_track.get(bs.owner[ref], 0) + 1
                )
        for i, c in enumerate(routing.connections):
            k = routing.segments_used_count(i)
            assert per_conn_track.get(c.name, 0) == k - 1


class TestDiagnoseProperties:
    @settings(max_examples=100, deadline=None)
    @given(channels(), connection_sets(), st.sampled_from([None, 1, 2]))
    def test_diagnostics_sound(self, channel, conns, k):
        if diagnose(channel, conns, max_segments=k):
            with pytest.raises(RoutingInfeasibleError):
                route_dp(channel, conns, max_segments=k)


class TestHeuristicProperties:
    @settings(max_examples=80, deadline=None)
    @given(channels(), connection_sets())
    def test_heuristics_never_return_invalid(self, channel, conns):
        for fn in (route_first_fit, route_best_fit):
            try:
                fn(channel, conns).validate()
            except HeuristicFailure:
                pass


class TestPersistenceProperties:
    @settings(max_examples=60, deadline=None)
    @given(routed_instances())
    def test_json_round_trip(self, pair):
        if pair is None:
            return
        _, routing = pair
        restored = routing_from_json(routing_to_json(routing))
        assert restored.assignment == routing.assignment
        assert restored.channel == routing.channel


class TestFacadeProperties:
    @settings(max_examples=80, deadline=None)
    @given(channels(), connection_sets(), st.sampled_from([None, 1, 2]))
    def test_route_auto_agrees_with_exact(self, channel, conns, k):
        """API-level guarantee: route(..., 'auto') finds a routing exactly
        when one exists."""
        from repro.core.api import route
        from repro.core.exact import route_exact

        try:
            route_exact(channel, conns, max_segments=k)
            expected = True
        except RoutingInfeasibleError:
            expected = False
        try:
            r = route(channel, conns, max_segments=k)
            r.validate(k)
            got = True
        except RoutingInfeasibleError:
            got = False
        assert got == expected

    @settings(max_examples=50, deadline=None)
    @given(channels(), connection_sets())
    def test_decomposed_dp_agrees_with_plain(self, channel, conns):
        from repro.core.decompose import route_dp_decomposed

        try:
            route_dp(channel, conns)
            expected = True
        except RoutingInfeasibleError:
            expected = False
        try:
            route_dp_decomposed(channel, conns).validate()
            got = True
        except RoutingInfeasibleError:
            got = False
        assert got == expected

"""Tests for the Theorem-7 typed (canonical-frontier) DP."""

import random

import pytest

from repro.analysis.complexity import theorem7_bound
from repro.core.channel import channel_from_breaks, identical_channel
from repro.core.connection import ConnectionSet
from repro.core.dp import route_dp, route_dp_with_stats
from repro.core.dp_types import (
    route_dp_track_types,
    route_dp_track_types_with_stats,
)
from repro.core.errors import RoutingInfeasibleError
from repro.core.routing import occupied_length_weight


def _two_type_channel(t1: int, t2: int, n: int = 12):
    breaks = [(4, 8)] * t1 + [(6,)] * t2
    return channel_from_breaks(n, breaks)


class TestTypedDP:
    def test_basic(self):
        ch = _two_type_channel(2, 2)
        cs = ConnectionSet.from_spans([(1, 4), (5, 8), (2, 6), (9, 12)])
        route_dp_track_types(ch, cs).validate()

    def test_agrees_with_general_dp_random(self):
        rng = random.Random(9)
        for _ in range(50):
            t1, t2 = rng.randint(1, 3), rng.randint(1, 3)
            ch = _two_type_channel(t1, t2)
            spans = []
            for _ in range(rng.randint(1, 6)):
                l = rng.randint(1, 12)
                spans.append((l, min(12, l + rng.randint(0, 6))))
            cs = ConnectionSet.from_spans(spans)
            k = rng.choice([None, 1, 2])
            general_ok = True
            try:
                route_dp(ch, cs, max_segments=k).validate(k)
            except RoutingInfeasibleError:
                general_ok = False
            typed_ok = True
            try:
                route_dp_track_types(ch, cs, max_segments=k).validate(k)
            except RoutingInfeasibleError:
                typed_ok = False
            assert typed_ok == general_ok

    def test_weighted_agrees_with_general(self):
        rng = random.Random(10)
        for _ in range(30):
            ch = _two_type_channel(rng.randint(1, 3), rng.randint(1, 3))
            spans = []
            for _ in range(rng.randint(1, 5)):
                l = rng.randint(1, 12)
                spans.append((l, min(12, l + rng.randint(0, 5))))
            cs = ConnectionSet.from_spans(spans)
            w = occupied_length_weight(ch)
            try:
                expected = route_dp(ch, cs, weight=w).total_weight(w)
            except RoutingInfeasibleError:
                continue
            got = route_dp_track_types(ch, cs, weight=w)
            got.validate()
            assert got.total_weight(w) == expected

    def test_identical_channel_single_type(self):
        ch = identical_channel(5, 12, (4, 8))
        cs = ConnectionSet.from_spans([(1, 4)] * 4 + [(5, 8)])
        r, stats = route_dp_track_types_with_stats(ch, cs)
        r.validate()
        assert stats.n_types == 1
        assert stats.tracks_per_type == (5,)

    def test_canonical_width_not_larger_than_general(self):
        ch = _two_type_channel(3, 3)
        cs = ConnectionSet.from_spans(
            [(1, 4), (2, 6), (3, 8), (5, 8), (7, 12), (9, 12)]
        )
        _, typed = route_dp_track_types_with_stats(ch, cs, max_segments=2)
        _, general = route_dp_with_stats(ch, cs, max_segments=2)
        assert typed.max_level_width <= general.max_level_width

    def test_theorem7_bound_holds(self):
        rng = random.Random(12)
        for _ in range(15):
            t1, t2 = rng.randint(1, 4), rng.randint(1, 4)
            ch = _two_type_channel(t1, t2)
            spans = []
            for _ in range(rng.randint(2, 7)):
                l = rng.randint(1, 12)
                spans.append((l, min(12, l + rng.randint(0, 5))))
            cs = ConnectionSet.from_spans(spans)
            K = rng.choice([1, 2])
            try:
                _, stats = route_dp_track_types_with_stats(
                    ch, cs, max_segments=K
                )
            except RoutingInfeasibleError:
                continue
            assert stats.max_level_width <= theorem7_bound((t1, t2), K)

    def test_non_type_uniform_weight_rejected(self):
        ch = _two_type_channel(2, 1)
        cs = ConnectionSet.from_spans([(1, 4)])

        def w(c, t):
            return float(t)  # depends on concrete track, not type

        with pytest.raises(RoutingInfeasibleError):
            route_dp_track_types(ch, cs, weight=w)

    def test_empty(self):
        ch = _two_type_channel(1, 1)
        assert route_dp_track_types(ch, ConnectionSet([])).assignment == ()

    def test_infeasible(self):
        ch = channel_from_breaks(6, [(3,), (2, 4)])
        cs = ConnectionSet.from_spans([(1, 6)] * 3)
        with pytest.raises(RoutingInfeasibleError):
            route_dp_track_types(ch, cs)

    def test_many_tracks_few_types_scales(self):
        # 16 tracks of 2 types would be hopeless for the general DP
        # (2^16 * 16! bound); the typed DP routes it instantly.
        ch = _two_type_channel(8, 8, n=12)
        spans = [(1, 4)] * 6 + [(5, 8)] * 6 + [(9, 12)] * 4
        cs = ConnectionSet.from_spans(spans)
        r = route_dp_track_types(ch, cs, max_segments=1)
        r.validate(1)

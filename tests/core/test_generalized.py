"""Tests for generalized routing (Section V, Problem 4)."""

import random

import pytest

from repro.core.channel import channel_from_breaks
from repro.core.connection import ConnectionSet
from repro.core.dp import route_dp
from repro.core.errors import RoutingInfeasibleError
from repro.core.generalized import (
    route_generalized,
    route_generalized_with_stats,
)


class TestBasics:
    def test_single_track_instances_still_work(self):
        ch = channel_from_breaks(9, [(3, 6), (5,)])
        cs = ConnectionSet.from_spans([(1, 3), (4, 6), (7, 9)])
        g = route_generalized(ch, cs)
        g.validate()

    def test_empty(self):
        ch = channel_from_breaks(9, [(3,)])
        g = route_generalized(ch, ConnectionSet([]))
        assert g.pieces == ()

    def test_fig4_needs_generalized(self):
        from repro.generators.paper_examples import fig4_channel, fig4_connections

        ch, cs = fig4_channel(), fig4_connections()
        with pytest.raises(RoutingInfeasibleError):
            route_dp(ch, cs)
        g = route_generalized(ch, cs)
        g.validate()
        # The weaving connection c4 = (3,7) uses s22 (track 2) and s33
        # (track 3), as the Section II discussion of Fig. 4 describes.
        i = cs.index_of(cs.by_name("c4"))
        segs = {(s.track, s.left, s.right) for s in g.segments_used(i)}
        assert segs == {(1, 3, 6), (2, 6, 7)}

    def test_generalized_at_least_as_powerful(self):
        rng = random.Random(17)
        for _ in range(40):
            T = rng.randint(2, 3)
            N = rng.randint(5, 9)
            breaks = [
                tuple(sorted(rng.sample(range(1, N), rng.randint(0, 2))))
                for _ in range(T)
            ]
            ch = channel_from_breaks(N, breaks)
            spans = []
            for _ in range(rng.randint(1, 4)):
                l = rng.randint(1, N)
                spans.append((l, min(N, l + rng.randint(0, 4))))
            cs = ConnectionSet.from_spans(spans)
            single_ok = True
            try:
                route_dp(ch, cs)
            except RoutingInfeasibleError:
                single_ok = False
            gen_ok = True
            try:
                route_generalized(ch, cs).validate()
            except RoutingInfeasibleError:
                gen_ok = False
            assert gen_ok or not single_ok  # single-track => generalized

    def test_column_capacity_bound(self):
        # More connections crossing a column than tracks: even generalized
        # routing must fail.
        ch = channel_from_breaks(6, [(3,), (2, 4)])
        cs = ConnectionSet.from_spans([(2, 4), (3, 5), (1, 6)])
        with pytest.raises(RoutingInfeasibleError):
            route_generalized(ch, cs)

    def test_stats(self):
        ch = channel_from_breaks(9, [(3, 6), (5,)])
        cs = ConnectionSet.from_spans([(1, 3), (4, 6)])
        g, stats = route_generalized_with_stats(ch, cs)
        g.validate()
        assert stats.n_pieces == 6
        assert len(stats.nodes_per_level) == 6


class TestRestrictions:
    @pytest.fixture
    def weaving_instance(self):
        from repro.generators.paper_examples import fig4_channel, fig4_connections

        return fig4_channel(), fig4_connections()

    def test_allowed_change_columns_permissive(self, weaving_instance):
        ch, cs = weaving_instance
        # Allowing a change everywhere must match the unrestricted result.
        g = route_generalized(ch, cs, allowed_change_columns=range(1, 10))
        g.validate(allowed_change_columns=set(range(1, 10)))

    def test_allowed_change_columns_blocking(self, weaving_instance):
        ch, cs = weaving_instance
        # The instance requires a track change somewhere; forbidding all
        # changes makes it as hard as single-track routing -> infeasible.
        with pytest.raises(RoutingInfeasibleError):
            route_generalized(ch, cs, allowed_change_columns=[])

    def test_allowed_change_column_specific(self, weaving_instance):
        ch, cs = weaving_instance
        # c4 weaves s22 -> s33 at column 7.
        g = route_generalized(ch, cs, allowed_change_columns=[7])
        g.validate(allowed_change_columns={7})

    def test_max_track_changes_zero_equals_single_track(self):
        rng = random.Random(19)
        for _ in range(25):
            T = rng.randint(2, 3)
            N = rng.randint(5, 8)
            breaks = [
                tuple(sorted(rng.sample(range(1, N), rng.randint(0, 2))))
                for _ in range(T)
            ]
            ch = channel_from_breaks(N, breaks)
            spans = []
            for _ in range(rng.randint(1, 3)):
                l = rng.randint(1, N)
                spans.append((l, min(N, l + rng.randint(0, 4))))
            cs = ConnectionSet.from_spans(spans)
            single_ok = True
            try:
                route_dp(ch, cs)
            except RoutingInfeasibleError:
                single_ok = False
            restricted_ok = True
            try:
                g = route_generalized(ch, cs, max_track_changes=0)
                g.validate()
                assert all(g.n_track_changes(i) == 0 for i in range(len(cs)))
            except RoutingInfeasibleError:
                restricted_ok = False
            assert restricted_ok == single_ok

    def test_max_track_changes_one(self, weaving_instance):
        ch, cs = weaving_instance
        g = route_generalized(ch, cs, max_track_changes=1)
        g.validate()
        assert all(g.n_track_changes(i) <= 1 for i in range(len(cs)))

    def test_overlap_switches_restriction(self, weaving_instance):
        ch, cs = weaving_instance
        # c4's change at column 7: the old track's segment s22 ends at 6,
        # so it does NOT extend through column 7 — under the overlap rule
        # that change is illegal.  The instance may route another way or
        # fail; either way every change in a returned routing must satisfy
        # the rule.
        try:
            g = route_generalized(ch, cs, overlap_switches=True)
        except RoutingInfeasibleError:
            return
        g.validate()
        for i in range(len(cs)):
            parts = g.pieces[i]
            for a, b in zip(parts, parts[1:]):
                if a[0] != b[0]:
                    change_col = b[1]
                    old_track = a[0]
                    assert (
                        ch.segment_end_at(old_track, change_col - 1)
                        >= change_col
                    )

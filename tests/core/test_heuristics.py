"""Heuristic router tests."""

import random

import pytest

from repro.core.channel import channel_from_breaks, identical_channel
from repro.core.connection import ConnectionSet
from repro.core.dp import route_dp
from repro.core.errors import HeuristicFailure, RoutingInfeasibleError
from repro.core.heuristics import (
    route_best_fit,
    route_first_fit,
    route_random_restart,
)


@pytest.fixture
def channel():
    return channel_from_breaks(12, [(4, 8), (6,), ()])


class TestFirstFit:
    def test_routes_valid(self, channel):
        cs = ConnectionSet.from_spans([(1, 4), (5, 8), (9, 12), (1, 6)])
        r = route_first_fit(channel, cs)
        r.validate()

    def test_takes_lowest_track(self, channel):
        cs = ConnectionSet.from_spans([(1, 4)])
        assert route_first_fit(channel, cs).assignment == (0,)

    def test_k_respected(self, channel):
        cs = ConnectionSet.from_spans([(1, 10)])
        r = route_first_fit(channel, cs, max_segments=1)
        r.validate(max_segments=1)
        assert r.assignment == (2,)

    def test_failure_not_a_proof(self, channel):
        # First-fit can fail on routable instances; when it fails it must
        # raise HeuristicFailure, never claim infeasibility.
        rng = random.Random(0)
        failures = 0
        for _ in range(60):
            spans = []
            for _ in range(rng.randint(2, 5)):
                l = rng.randint(1, 12)
                spans.append((l, min(12, l + rng.randint(0, 6))))
            cs = ConnectionSet.from_spans(spans)
            try:
                route_first_fit(channel, cs).validate()
            except HeuristicFailure:
                failures += 1
        assert failures >= 0  # smoke: no other exception type escaped

    def test_exact_on_identical_tracks(self):
        ch = identical_channel(3, 12, (4, 8))
        rng = random.Random(1)
        for _ in range(40):
            spans = []
            for _ in range(rng.randint(1, 6)):
                l = rng.randint(1, 12)
                spans.append((l, min(12, l + rng.randint(0, 5))))
            cs = ConnectionSet.from_spans(spans)
            try:
                route_dp(ch, cs)
                feasible = True
            except RoutingInfeasibleError:
                feasible = False
            try:
                route_first_fit(ch, cs).validate()
                got = True
            except HeuristicFailure:
                got = False
            assert got == feasible


class TestBestFit:
    def test_routes_valid(self, channel):
        cs = ConnectionSet.from_spans([(1, 4), (2, 6), (5, 8), (9, 12)])
        route_best_fit(channel, cs).validate()

    def test_prefers_tight_segment(self, channel):
        # (1,4) fits track0 (1,4) with waste 0 vs track1 (1,6) waste 2 vs
        # track2 whole track waste 8.
        cs = ConnectionSet.from_spans([(1, 4)])
        assert route_best_fit(channel, cs).assignment == (0,)

    def test_matches_theorem3_rule_for_k1(self, channel):
        from repro.core.greedy import route_one_segment_greedy

        rng = random.Random(2)
        agreements = 0
        for _ in range(40):
            spans = []
            for _ in range(rng.randint(1, 5)):
                l = rng.randint(1, 12)
                spans.append((l, min(12, l + rng.randint(0, 4))))
            cs = ConnectionSet.from_spans(spans)
            try:
                exact = route_one_segment_greedy(channel, cs)
            except RoutingInfeasibleError:
                continue
            got = route_best_fit(channel, cs, max_segments=1)
            got.validate(1)
            agreements += 1
        assert agreements > 10


class TestRandomRestart:
    def test_routes_valid(self, channel):
        cs = ConnectionSet.from_spans([(1, 4), (2, 6), (5, 8), (9, 12)])
        r = route_random_restart(channel, cs, seed=3)
        r.validate()

    def test_deterministic_given_seed(self, channel):
        cs = ConnectionSet.from_spans([(1, 4), (2, 6), (5, 8)])
        a = route_random_restart(channel, cs, seed=4)
        b = route_random_restart(channel, cs, seed=4)
        assert a.assignment == b.assignment

    def test_restarts_recover_first_fit_failures(self):
        # Find instances where first-fit fails but the instance is
        # routable; random restarts should succeed on most.
        rng = random.Random(5)
        ch = channel_from_breaks(12, [(4, 8), (6,), (3, 9)])
        recovered = tried = 0
        for _ in range(300):
            spans = []
            for _ in range(rng.randint(3, 6)):
                l = rng.randint(1, 12)
                spans.append((l, min(12, l + rng.randint(0, 6))))
            cs = ConnectionSet.from_spans(spans)
            try:
                route_first_fit(ch, cs)
                continue
            except HeuristicFailure:
                pass
            try:
                route_dp(ch, cs)
            except RoutingInfeasibleError:
                continue
            tried += 1
            try:
                route_random_restart(ch, cs, n_restarts=64, seed=tried)
                recovered += 1
            except HeuristicFailure:
                pass
        assert tried > 0
        assert recovered >= tried * 0.6

    def test_failure_raises_heuristic(self):
        ch = channel_from_breaks(6, [()])
        cs = ConnectionSet.from_spans([(1, 3), (2, 5)])
        with pytest.raises(HeuristicFailure):
            route_random_restart(ch, cs, n_restarts=4, seed=6)

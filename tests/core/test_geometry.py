"""ChannelGeometry tables vs the Track bisect queries they replace."""

from __future__ import annotations

import random

from repro.core.channel import channel_from_breaks
from repro.core.geometry import ChannelGeometry, channel_geometry
from repro.generators.random_instances import random_channel


def test_tables_match_track_queries():
    for seed in range(20):
        rng = random.Random(seed)
        T = rng.randint(1, 6)
        N = rng.randint(5, 50)
        ch = random_channel(T, N, rng.uniform(1.5, 6.0), seed=seed)
        geom = channel_geometry(ch)
        for t in range(T):
            track = ch.track(t)
            for col in range(1, N + 1):
                assert geom.seg_index[t][col] == track.segment_index_at(col)
                left, right = track.segment_bounds[track.segment_index_at(col)]
                assert geom.seg_start[t][col] == left
                assert geom.seg_end[t][col] == right


def test_segments_occupied_and_span_match_channel():
    ch = random_channel(4, 30, 3.0, seed=3)
    geom = channel_geometry(ch)
    for t in range(4):
        for left in range(1, 31):
            for right in range(left, 31):
                assert geom.segments_occupied(t, left, right) == ch.track(
                    t
                ).segments_occupied(left, right)
                assert geom.occupied_span(t, left, right) == ch.track(
                    t
                ).occupied_span(left, right)


def test_memoized_on_equal_channels():
    a = channel_from_breaks(12, [(4, 8), (6,)])
    b = channel_from_breaks(12, [(4, 8), (6,)])
    assert a is not b and a == b
    assert channel_geometry(a) is channel_geometry(b)


def test_segment_ids_globally_unique():
    ch = channel_from_breaks(12, [(4, 8), (6,), ()])
    geom = channel_geometry(ch)
    ids = set()
    for t in range(3):
        for si in range(ch.track(t).n_segments):
            col = ch.track(t).segment_bounds[si][0]
            ids.add(geom.segment_id(t, col))
    assert len(ids) == sum(ch.track(t).n_segments for t in range(3))


def test_covering_sorted_by_right_then_track():
    ch = channel_from_breaks(12, [(4, 8), (6,), (4, 8)])
    geom = channel_geometry(ch)
    for col in range(1, 13):
        rights, tracks, seg_ids = geom.covering(col)
        assert len(rights) == len(tracks) == len(seg_ids) == 3
        pairs = list(zip(rights, tracks))
        assert pairs == sorted(pairs)
        for right, t, sid in zip(rights, tracks, seg_ids):
            assert right == geom.seg_end[t][col]
            assert sid == geom.segment_id(t, col)
    # Lazy cache returns the same lists.
    assert geom.covering(5) is geom.covering(5)


def test_direct_construction_matches_cached():
    ch = channel_from_breaks(10, [(5,), ()])
    direct = ChannelGeometry(ch)
    cached = channel_geometry(ch)
    assert direct.seg_index == cached.seg_index
    assert direct.seg_end == cached.seg_end


def test_released_channel_is_collectable():
    """Regression: the geometry memo must not pin channels alive.

    The old ``lru_cache(maxsize=256)`` kept a strong reference to every
    recent channel (and its O(T*N) tables) forever; the weak-keyed memo
    releases the entry with the last reference to the channel.
    """
    import gc
    import weakref

    ch = channel_from_breaks(64, [(8, 16, 32), (4, 48), (24,)])
    geom_ref = weakref.ref(channel_geometry(ch))
    ch_ref = weakref.ref(ch)
    del ch
    gc.collect()
    assert ch_ref() is None, "channel pinned by the geometry memo"
    assert geom_ref() is None, "geometry tables pinned after release"


def test_equal_channels_share_one_table_while_alive():
    a = channel_from_breaks(9, [(2, 6), (3, 6), (5,)])
    b = channel_from_breaks(9, [(2, 6), (3, 6), (5,)])
    # Equality/hash by break tuples: one table for both, as before.
    assert channel_geometry(a) is channel_geometry(b)

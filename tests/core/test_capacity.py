"""Diagnostics tests — soundness above all: a diagnostic may only fire on
instances an exact router proves infeasible."""

import random

import pytest

from repro.core.capacity import column_capacity_ok, diagnose, k_fit_ok
from repro.core.channel import channel_from_breaks, identical_channel
from repro.core.connection import ConnectionSet
from repro.core.dp import route_dp
from repro.core.errors import RoutingInfeasibleError
from repro.core.generalized import route_generalized
from repro.core.greedy import route_one_segment_greedy


class TestColumnCapacity:
    def test_fires_on_overload(self):
        ch = channel_from_breaks(6, [(3,), ()])
        cs = ConnectionSet.from_spans([(1, 4), (2, 5), (3, 6)])
        b = column_capacity_ok(ch, cs)
        assert b is not None
        assert b.kind == "column-capacity"
        assert b.column == 3

    def test_silent_when_ok(self):
        ch = channel_from_breaks(6, [(3,), ()])
        cs = ConnectionSet.from_spans([(1, 4), (2, 5)])
        assert column_capacity_ok(ch, cs) is None

    def test_sound_vs_generalized(self):
        # Whenever it fires, even generalized routing must fail.
        rng = random.Random(1)
        fired = 0
        for _ in range(50):
            ch = channel_from_breaks(8, [(4,), (2, 6)])
            spans = []
            for _ in range(rng.randint(2, 5)):
                l = rng.randint(1, 8)
                spans.append((l, min(8, l + rng.randint(0, 5))))
            cs = ConnectionSet.from_spans(spans)
            if column_capacity_ok(ch, cs) is not None:
                fired += 1
                with pytest.raises(RoutingInfeasibleError):
                    route_generalized(ch, cs)
        assert fired > 0


class TestKFit:
    def test_fires(self):
        ch = channel_from_breaks(9, [(3, 6), (4,)])
        cs = ConnectionSet.from_spans([(1, 9)])
        b = k_fit_ok(ch, cs, 1)
        assert b is not None and b.kind == "k-fit"

    def test_silent_when_some_track_fits(self):
        ch = channel_from_breaks(9, [(3, 6), ()])
        cs = ConnectionSet.from_spans([(1, 9)])
        assert k_fit_ok(ch, cs, 1) is None

    def test_none_k_always_silent(self):
        ch = channel_from_breaks(9, [(3, 6)])
        cs = ConnectionSet.from_spans([(1, 9)])
        assert k_fit_ok(ch, cs, None) is None


class TestDiagnose:
    def test_empty_on_routable(self):
        ch = channel_from_breaks(9, [(3, 6), (5,)])
        cs = ConnectionSet.from_spans([(1, 3), (4, 6), (7, 9)])
        assert diagnose(ch, cs, max_segments=1) == []

    def test_segment_supply_fires(self):
        # Two connections inside [1,4]; only one segment covers either.
        ch = channel_from_breaks(8, [(4,), (2, 6)])
        cs = ConnectionSet.from_spans([(1, 3), (1, 4)])
        # track 2's (3,6) doesn't cover them; track 1's (1,4) covers both;
        # track 2's (1,2)? covers neither ((1,3) not within (1,2)).
        out = diagnose(ch, cs, max_segments=1)
        assert any(b.kind == "segment-supply" for b in out)

    def test_extended_density_fires(self):
        ch = identical_channel(1, 9, (4,))
        cs = ConnectionSet.from_spans([(3, 5)] + [(1, 2)])
        # (3,5) stretches to (1,9); (1,2) stretches to (1,4): overlap -> 2 > 1.
        out = diagnose(ch, cs)
        assert any(b.kind == "extended-density" for b in out)

    def test_soundness_random_k1(self):
        rng = random.Random(7)
        fired = 0
        for _ in range(120):
            T = rng.randint(1, 3)
            breaks = [
                tuple(sorted(rng.sample(range(1, 8), rng.randint(0, 3))))
                for _ in range(T)
            ]
            ch = channel_from_breaks(8, breaks)
            spans = []
            for _ in range(rng.randint(1, 4)):
                l = rng.randint(1, 8)
                spans.append((l, min(8, l + rng.randint(0, 4))))
            cs = ConnectionSet.from_spans(spans)
            out = diagnose(ch, cs, max_segments=1)
            if out:
                fired += 1
                with pytest.raises(RoutingInfeasibleError):
                    route_one_segment_greedy(ch, cs)
        assert fired > 5

    def test_soundness_random_unlimited(self):
        rng = random.Random(8)
        for _ in range(80):
            T = rng.randint(1, 3)
            breaks = [
                tuple(sorted(rng.sample(range(1, 8), rng.randint(0, 3))))
                for _ in range(T)
            ]
            ch = channel_from_breaks(8, breaks)
            spans = []
            for _ in range(rng.randint(1, 4)):
                l = rng.randint(1, 8)
                spans.append((l, min(8, l + rng.randint(0, 4))))
            cs = ConnectionSet.from_spans(spans)
            if diagnose(ch, cs):
                with pytest.raises(RoutingInfeasibleError):
                    route_dp(ch, cs)

    def test_bottleneck_str(self):
        ch = channel_from_breaks(6, [()])
        cs = ConnectionSet.from_spans([(1, 4), (2, 5)])
        out = diagnose(ch, cs)
        assert out and "column" in str(out[0])

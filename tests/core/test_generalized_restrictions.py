"""Section II restricted cases 1 and 2 for generalized routing:
per-connection segment and distinct-track budgets in the DP."""

import random

import pytest

from repro.core.channel import channel_from_breaks
from repro.core.connection import ConnectionSet
from repro.core.dp import route_dp
from repro.core.errors import RoutingInfeasibleError
from repro.core.generalized import route_generalized


@pytest.fixture
def fig4():
    from repro.generators.paper_examples import fig4_channel, fig4_connections

    return fig4_channel(), fig4_connections()


class TestMaxSegments:
    def test_budget_respected(self, fig4):
        ch, cs = fig4
        g = route_generalized(ch, cs, max_segments=3)
        g.validate(max_segments=3)
        assert all(len(g.segments_used(i)) <= 3 for i in range(len(cs)))

    def test_tight_budget_may_be_infeasible(self):
        # A connection that must join segments in every realization.
        ch = channel_from_breaks(8, [(4,)])
        cs = ConnectionSet.from_spans([(2, 6)])
        route_generalized(ch, cs, max_segments=2).validate(max_segments=2)
        with pytest.raises(RoutingInfeasibleError):
            route_generalized(ch, cs, max_segments=1)

    def test_k1_matches_single_segment_feasibility(self):
        # With K=1, generalized routing cannot split (a split needs >= 2
        # segments), so feasibility equals 1-segment routing feasibility.
        from repro.core.matching import one_segment_feasible

        rng = random.Random(5)
        for _ in range(30):
            T = rng.randint(1, 3)
            N = rng.randint(5, 9)
            breaks = [
                tuple(sorted(rng.sample(range(1, N), rng.randint(0, 2))))
                for _ in range(T)
            ]
            ch = channel_from_breaks(N, breaks)
            spans = []
            for _ in range(rng.randint(1, 3)):
                l = rng.randint(1, N)
                spans.append((l, min(N, l + rng.randint(0, 3))))
            cs = ConnectionSet.from_spans(spans)
            expected = one_segment_feasible(ch, cs)
            try:
                g = route_generalized(ch, cs, max_segments=1)
                g.validate(max_segments=1)
                got = True
            except RoutingInfeasibleError:
                got = False
            assert got == expected

    def test_budget_relaxation_monotone(self, fig4):
        ch, cs = fig4
        feasible_at = {}
        for k in (1, 2, 3, 4, None):
            try:
                route_generalized(ch, cs, max_segments=k)
                feasible_at[k] = True
            except RoutingInfeasibleError:
                feasible_at[k] = False
        # Once feasible, stays feasible as K grows.
        order = [1, 2, 3, 4, None]
        seen_true = False
        for k in order:
            if feasible_at[k]:
                seen_true = True
            elif seen_true:
                pytest.fail(f"feasibility not monotone at K={k}")


class TestMaxTracks:
    def test_budget_respected(self, fig4):
        ch, cs = fig4
        g = route_generalized(ch, cs, max_tracks=2)
        g.validate(max_tracks=2)
        assert all(
            len(set(g.tracks_of(i))) <= 2 for i in range(len(cs))
        )

    def test_single_track_budget_equals_problem1(self):
        rng = random.Random(7)
        for _ in range(25):
            T = rng.randint(1, 3)
            N = rng.randint(5, 9)
            breaks = [
                tuple(sorted(rng.sample(range(1, N), rng.randint(0, 2))))
                for _ in range(T)
            ]
            ch = channel_from_breaks(N, breaks)
            spans = []
            for _ in range(rng.randint(1, 3)):
                l = rng.randint(1, N)
                spans.append((l, min(N, l + rng.randint(0, 3))))
            cs = ConnectionSet.from_spans(spans)
            try:
                route_dp(ch, cs)
                expected = True
            except RoutingInfeasibleError:
                expected = False
            try:
                g = route_generalized(ch, cs, max_tracks=1)
                g.validate(max_tracks=1)
                got = True
            except RoutingInfeasibleError:
                got = False
            assert got == expected

    def test_combined_budgets(self, fig4):
        ch, cs = fig4
        g = route_generalized(ch, cs, max_segments=3, max_tracks=2)
        g.validate(max_segments=3, max_tracks=2)

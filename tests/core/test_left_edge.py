"""Tests for the left-edge routers (Section IV-A identical tracks +
unconstrained baseline)."""

import pytest

from repro.core.channel import channel_from_breaks, identical_channel, unsegmented_channel
from repro.core.connection import ConnectionSet, density
from repro.core.errors import ChannelError, RoutingInfeasibleError
from repro.core.left_edge import (
    route_left_edge_identical,
    route_left_edge_unconstrained,
)


class TestIdentical:
    def test_rejects_non_identical(self):
        ch = channel_from_breaks(9, [(3,), (4,)])
        with pytest.raises(ChannelError):
            route_left_edge_identical(ch, ConnectionSet.from_spans([(1, 2)]))

    def test_routes_simple(self):
        ch = identical_channel(2, 9, (3, 6))
        cs = ConnectionSet.from_spans([(1, 3), (4, 6), (7, 9), (1, 6)])
        r = route_left_edge_identical(ch, cs)
        r.validate()

    def test_respects_segment_occupancy_not_just_span(self):
        # Two span-disjoint connections in the same segment conflict.
        ch = identical_channel(2, 9, (4,))
        cs = ConnectionSet.from_spans([(1, 2), (3, 4)])
        r = route_left_edge_identical(ch, cs)
        r.validate()
        assert r.assignment[0] != r.assignment[1]

    def test_infeasible_raises(self):
        ch = identical_channel(1, 9, (4,))
        cs = ConnectionSet.from_spans([(1, 2), (3, 4)])
        with pytest.raises(RoutingInfeasibleError):
            route_left_edge_identical(ch, cs)

    def test_k_limit_checked_upfront(self):
        ch = identical_channel(3, 9, (3, 6))
        cs = ConnectionSet.from_spans([(1, 9)])
        with pytest.raises(RoutingInfeasibleError):
            route_left_edge_identical(ch, cs, max_segments=2)
        route_left_edge_identical(ch, cs, max_segments=3).validate(3)

    def test_exactness_on_identical_tracks(self):
        # Greedy-left-edge failure == true infeasibility; cross-check with
        # the DP on a batch of instances.
        from repro.core.dp import route_dp

        ch = identical_channel(2, 8, (4,))
        spans_pool = [(1, 2), (2, 4), (3, 5), (5, 8), (6, 7), (1, 8)]
        import itertools

        for m in (2, 3):
            for combo in itertools.combinations(spans_pool, m):
                cs = ConnectionSet.from_spans(list(combo))
                try:
                    route_left_edge_identical(ch, cs).validate()
                    le_ok = True
                except RoutingInfeasibleError:
                    le_ok = False
                try:
                    route_dp(ch, cs).validate()
                    dp_ok = True
                except RoutingInfeasibleError:
                    dp_ok = False
                assert le_ok == dp_ok, combo

    def test_empty_connections(self):
        ch = identical_channel(2, 9, (3,))
        r = route_left_edge_identical(ch, ConnectionSet([]))
        assert r.assignment == ()


class TestUnconstrained:
    def test_track_count_equals_density(self):
        cs = ConnectionSet.from_spans([(1, 4), (2, 6), (5, 9), (7, 9)])
        r = route_left_edge_unconstrained(cs)
        assert r.channel.n_tracks == density(cs)
        r.validate()

    def test_nested_intervals(self):
        cs = ConnectionSet.from_spans([(1, 9), (2, 3), (4, 5), (6, 8)])
        r = route_left_edge_unconstrained(cs)
        assert r.channel.n_tracks == 2
        r.validate()

    def test_disjoint_share_one_track(self):
        cs = ConnectionSet.from_spans([(1, 2), (3, 4), (5, 6)])
        r = route_left_edge_unconstrained(cs)
        assert r.channel.n_tracks == 1

    def test_explicit_columns(self):
        cs = ConnectionSet.from_spans([(1, 2)])
        r = route_left_edge_unconstrained(cs, n_columns=20)
        assert r.channel.n_columns == 20

    def test_empty(self):
        r = route_left_edge_unconstrained(ConnectionSet([]))
        assert r.channel.n_tracks == 1
        assert r.assignment == ()

    def test_density_optimality_random(self):
        import random

        rng = random.Random(5)
        for _ in range(25):
            spans = []
            for _ in range(rng.randint(1, 12)):
                l = rng.randint(1, 15)
                spans.append((l, min(16, l + rng.randint(0, 6))))
            cs = ConnectionSet.from_spans(spans)
            r = route_left_edge_unconstrained(cs)
            r.validate()
            assert r.channel.n_tracks == density(cs)

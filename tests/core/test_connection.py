"""Tests for Connection, ConnectionSet, density, extended density."""

import pytest

from repro.core.channel import channel_from_breaks, identical_channel
from repro.core.connection import (
    Connection,
    ConnectionSet,
    density,
    extended_density,
)
from repro.core.errors import ConnectionError_


class TestConnection:
    def test_length(self):
        assert Connection(3, 7).length == 5

    def test_single_column(self):
        assert Connection(4, 4).length == 1

    def test_left_below_one_raises(self):
        with pytest.raises(ConnectionError_):
            Connection(0, 4)

    def test_inverted_raises(self):
        with pytest.raises(ConnectionError_):
            Connection(5, 4)

    def test_overlap_symmetric(self):
        a, b = Connection(1, 4), Connection(4, 8)
        assert a.overlaps(b) and b.overlaps(a)

    def test_no_overlap_adjacent(self):
        assert not Connection(1, 4).overlaps(Connection(5, 8))

    def test_contains_column(self):
        c = Connection(3, 5)
        assert c.contains_column(3) and c.contains_column(5)
        assert not c.contains_column(6)

    def test_ordering_by_left_then_right(self):
        assert Connection(1, 9) < Connection(2, 3)
        assert Connection(1, 3) < Connection(1, 9)


class TestConnectionSet:
    def test_sorted_on_construction(self):
        cs = ConnectionSet([Connection(5, 6, "b"), Connection(1, 2, "a")])
        assert [c.left for c in cs] == [1, 5]

    def test_duplicates_rejected(self):
        with pytest.raises(ConnectionError_):
            ConnectionSet([Connection(1, 2, "x"), Connection(1, 2, "x")])

    def test_same_span_distinct_names_ok(self):
        cs = ConnectionSet([Connection(1, 2, "x"), Connection(1, 2, "y")])
        assert len(cs) == 2

    def test_from_spans_names(self):
        cs = ConnectionSet.from_spans([(3, 4), (1, 2)])
        # Named in input order, then sorted by span.
        assert cs[0].name == "c2" and cs[1].name == "c1"

    def test_index_of(self):
        cs = ConnectionSet.from_spans([(1, 2), (3, 4)])
        assert cs.index_of(cs[1]) == 1

    def test_index_of_missing(self):
        cs = ConnectionSet.from_spans([(1, 2)])
        with pytest.raises(ConnectionError_):
            cs.index_of(Connection(9, 9, "zzz"))

    def test_by_name(self):
        cs = ConnectionSet.from_spans([(1, 2), (3, 4)])
        assert cs.by_name("c2").left == 3

    def test_by_name_missing(self):
        with pytest.raises(ConnectionError_):
            ConnectionSet.from_spans([(1, 2)]).by_name("nope")

    def test_max_column(self):
        assert ConnectionSet.from_spans([(1, 2), (3, 9)]).max_column() == 9

    def test_max_column_empty(self):
        assert ConnectionSet([]).max_column() == 0

    def test_check_within(self):
        ch = channel_from_breaks(5, [()])
        ConnectionSet.from_spans([(1, 5)]).check_within(ch)
        with pytest.raises(ConnectionError_):
            ConnectionSet.from_spans([(1, 6)]).check_within(ch)

    def test_total_length(self):
        assert ConnectionSet.from_spans([(1, 2), (4, 7)]).total_length() == 6

    def test_equality_and_hash(self):
        a = ConnectionSet.from_spans([(1, 2)])
        b = ConnectionSet.from_spans([(1, 2)])
        assert a == b and hash(a) == hash(b)

    def test_getitem(self):
        cs = ConnectionSet.from_spans([(1, 2), (3, 4)])
        assert cs[0].left == 1


class TestDensity:
    def test_empty(self):
        assert density([]) == 0

    def test_disjoint(self):
        assert density([Connection(1, 2), Connection(3, 4)]) == 1

    def test_nested(self):
        assert density([Connection(1, 9), Connection(3, 4), Connection(5, 6)]) == 2

    def test_stack(self):
        conns = [Connection(2, 5, str(i)) for i in range(4)]
        assert density(conns) == 4

    def test_touching_columns_count(self):
        # Both present in column 4.
        assert density([Connection(1, 4), Connection(4, 8)]) == 2

    def test_adjacent_do_not_count(self):
        assert density([Connection(1, 4), Connection(5, 8)]) == 1


class TestExtendedDensity:
    def test_requires_identical(self):
        ch = channel_from_breaks(9, [(3,), (4,)])
        with pytest.raises(ConnectionError_):
            extended_density([Connection(1, 2)], ch)

    def test_extension_raises_density(self):
        # Two connections in different segments have raw density 1, but
        # both extend into overlapping segment spans.
        ch = identical_channel(2, 9, (4,))
        conns = [Connection(2, 4), Connection(5, 6)]
        assert density(conns) == 1
        # (2,4) extends to (1,4); (5,6) extends to (5,9): still disjoint.
        assert extended_density(conns, ch) == 1
        # Now a connection crossing the switch extends to the whole track.
        conns2 = [Connection(4, 5), Connection(1, 2), Connection(7, 8)]
        assert density(conns2) == 1
        assert extended_density(conns2, ch) == 2

    def test_extended_at_least_raw(self):
        ch = identical_channel(2, 12, (3, 6, 9))
        conns = [Connection(2, 5), Connection(4, 8), Connection(10, 11)]
        assert extended_density(conns, ch) >= density(conns)

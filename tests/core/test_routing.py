"""Tests for Routing / GeneralizedRouting and the validators."""

import pytest

from repro.core.channel import channel_from_breaks
from repro.core.connection import ConnectionSet
from repro.core.errors import ValidationError
from repro.core.routing import (
    GeneralizedRouting,
    Routing,
    occupied_length_weight,
    segment_count_weight,
    uniform_weight,
)


@pytest.fixture
def channel():
    return channel_from_breaks(9, [(3, 6), (5,)], name="rch")


@pytest.fixture
def conns():
    return ConnectionSet.from_spans([(1, 3), (4, 6), (7, 9)])


class TestRouting:
    def test_wrong_length_assignment(self, channel, conns):
        with pytest.raises(ValidationError):
            Routing(channel, conns, (0, 0))

    def test_valid_routing(self, channel, conns):
        r = Routing(channel, conns, (0, 0, 0))
        r.validate()
        assert r.is_valid()

    def test_track_of(self, channel, conns):
        r = Routing(channel, conns, (0, 1, 0))
        assert r.track_of(conns[1]) == 1

    def test_segments_used(self, channel, conns):
        r = Routing(channel, conns, (1, 1, 1))
        # (1,3) in track 1 (breaks at 5) occupies segment (1,5).
        segs = r.segments_used(0)
        assert [(s.left, s.right) for s in segs] == [(1, 5)]

    def test_segments_used_count(self, channel, conns):
        r = Routing(channel, conns, (1, 1, 1))
        assert r.segments_used_count(1) == 2  # (4,6) crosses break 5

    def test_max_segments_used(self, channel, conns):
        r = Routing(channel, conns, (0, 1, 0))
        assert r.max_segments_used() == 2

    def test_occupancy_conflict_detected(self, channel):
        conns = ConnectionSet.from_spans([(1, 2), (3, 3)])
        # Both in track 0 segment (1,3).
        r = Routing(channel, conns, (0, 0))
        with pytest.raises(ValidationError):
            r.occupancy()
        assert not r.is_valid()

    def test_same_track_disjoint_segments_ok(self, channel):
        conns = ConnectionSet.from_spans([(1, 3), (4, 6)])
        Routing(channel, conns, (0, 0)).validate()

    def test_nonexistent_track(self, channel, conns):
        r = Routing(channel, conns, (0, 1, 5))
        with pytest.raises(ValidationError):
            r.validate()

    def test_k_limit_enforced(self, channel, conns):
        # (4,6) on track 1 crosses the break at 5: two segments.
        r = Routing(channel, conns, (0, 1, 0))
        r.validate(max_segments=2)
        with pytest.raises(ValidationError):
            r.validate(max_segments=1)

    def test_connection_outside_channel(self, channel):
        conns = ConnectionSet.from_spans([(1, 10)])
        r = Routing(channel, conns, (0,))
        with pytest.raises(Exception):
            r.validate()

    def test_as_dict(self, channel, conns):
        r = Routing(channel, conns, (0, 1, 0))
        assert r.as_dict() == {"c1": 0, "c2": 1, "c3": 0}

    def test_total_weight(self, channel, conns):
        r = Routing(channel, conns, (0, 0, 0))
        w = occupied_length_weight(channel)
        assert r.total_weight(w) == 9.0  # three segments of track 0 fully


class TestWeights:
    def test_occupied_length_counts_slack(self, channel):
        conns = ConnectionSet.from_spans([(2, 3)])
        w = occupied_length_weight(channel)
        assert w(conns[0], 0) == 3.0  # segment (1,3)
        assert w(conns[0], 1) == 5.0  # segment (1,5)

    def test_segment_count(self, channel):
        conns = ConnectionSet.from_spans([(4, 6)])
        w = segment_count_weight(channel)
        assert w(conns[0], 0) == 1.0
        assert w(conns[0], 1) == 2.0

    def test_uniform(self, channel):
        conns = ConnectionSet.from_spans([(4, 6)])
        w = uniform_weight(channel)
        assert w(conns[0], 0) == w(conns[0], 1) == 1.0


class TestGeneralizedRouting:
    def test_valid_split(self, channel):
        conns = ConnectionSet.from_spans([(1, 9)])
        pieces = (((0, 1, 3), (1, 4, 9)),)
        g = GeneralizedRouting(channel, conns, pieces)
        g.validate()
        assert g.n_track_changes(0) == 1
        assert g.tracks_of(0) == [0, 1]

    def test_wrong_piece_count(self, channel):
        conns = ConnectionSet.from_spans([(1, 9), (1, 2)])
        with pytest.raises(ValidationError):
            GeneralizedRouting(channel, conns, (((0, 1, 9),),))

    def test_gap_in_pieces_rejected(self, channel):
        conns = ConnectionSet.from_spans([(1, 9)])
        g = GeneralizedRouting(channel, conns, (((0, 1, 3), (1, 5, 9)),))
        with pytest.raises(ValidationError):
            g.validate()

    def test_pieces_short_of_span_rejected(self, channel):
        conns = ConnectionSet.from_spans([(1, 9)])
        g = GeneralizedRouting(channel, conns, (((0, 1, 8),),))
        with pytest.raises(ValidationError):
            g.validate()

    def test_empty_pieces_rejected(self, channel):
        conns = ConnectionSet.from_spans([(1, 9)])
        g = GeneralizedRouting(channel, conns, ((),))
        with pytest.raises(ValidationError):
            g.validate()

    def test_same_connection_may_share_segment(self, channel):
        # Two pieces of one connection inside one segment of track 0.
        conns = ConnectionSet.from_spans([(1, 3)])
        g = GeneralizedRouting(channel, conns, (((0, 1, 2), (0, 3, 3)),))
        g.validate()
        assert len(g.segments_used(0)) == 1

    def test_distinct_connections_may_not_share(self, channel):
        conns = ConnectionSet.from_spans([(1, 2), (3, 3)])
        g = GeneralizedRouting(
            channel, conns, (((0, 1, 2),), ((0, 3, 3),))
        )
        with pytest.raises(ValidationError):
            g.validate()

    def test_max_tracks_restriction(self, channel):
        conns = ConnectionSet.from_spans([(1, 9)])
        g = GeneralizedRouting(channel, conns, (((0, 1, 3), (1, 4, 9)),))
        g.validate(max_tracks=2)
        with pytest.raises(ValidationError):
            g.validate(max_tracks=1)

    def test_allowed_change_columns(self, channel):
        conns = ConnectionSet.from_spans([(1, 9)])
        g = GeneralizedRouting(channel, conns, (((0, 1, 3), (1, 4, 9)),))
        g.validate(allowed_change_columns={4})
        with pytest.raises(ValidationError):
            g.validate(allowed_change_columns={5})

    def test_max_segments_restriction(self, channel):
        conns = ConnectionSet.from_spans([(1, 9)])
        g = GeneralizedRouting(channel, conns, (((0, 1, 3), (1, 4, 9)),))
        # track0 seg (1,3) + track1 segs (1,5)? piece (1,4,9) occupies
        # (1,5)? no: piece starts col 4 -> segments (1,5) and (6,9).
        assert len(g.segments_used(0)) == 3
        with pytest.raises(ValidationError):
            g.validate(max_segments=2)

    def test_from_routing_embedding(self, channel):
        conns = ConnectionSet.from_spans([(1, 3), (4, 6)])
        r = Routing(channel, conns, (0, 0))
        g = GeneralizedRouting.from_routing(r)
        g.validate()
        assert g.n_track_changes(0) == 0

"""Tests for the channel data model (Segment, Track, SegmentedChannel)."""

import pytest

from repro.core.channel import (
    Segment,
    SegmentedChannel,
    Track,
    channel_from_breaks,
    fully_segmented_channel,
    identical_channel,
    staggered_channel,
    unsegmented_channel,
    uniform_channel,
)
from repro.core.errors import ChannelError


class TestSegment:
    def test_length(self):
        assert Segment(0, 0, 3, 7).length == 5

    def test_single_column_length(self):
        assert Segment(0, 0, 4, 4).length == 1

    def test_covers_inside(self):
        assert Segment(0, 0, 3, 7).covers(4, 6)

    def test_covers_exact(self):
        assert Segment(0, 0, 3, 7).covers(3, 7)

    def test_covers_fails_left(self):
        assert not Segment(0, 0, 3, 7).covers(2, 6)

    def test_covers_fails_right(self):
        assert not Segment(0, 0, 3, 7).covers(4, 8)

    def test_overlaps_partial(self):
        assert Segment(0, 0, 3, 7).overlaps(6, 9)

    def test_overlaps_touching_edge(self):
        assert Segment(0, 0, 3, 7).overlaps(7, 9)

    def test_overlaps_disjoint(self):
        assert not Segment(0, 0, 3, 7).overlaps(8, 9)

    def test_ordering_is_by_track_then_index(self):
        a = Segment(0, 1, 5, 9)
        b = Segment(1, 0, 1, 4)
        assert a < b


class TestTrack:
    def test_no_breaks_single_segment(self):
        t = Track(10)
        assert t.n_segments == 1
        assert t.segment_bounds == ((1, 10),)

    def test_breaks_make_segments(self):
        t = Track(9, (3, 6))
        assert t.segment_bounds == ((1, 3), (4, 6), (7, 9))

    def test_break_at_first_column(self):
        t = Track(5, (1,))
        assert t.segment_bounds == ((1, 1), (2, 5))

    def test_break_at_last_allowed_position(self):
        t = Track(5, (4,))
        assert t.segment_bounds == ((1, 4), (5, 5))

    def test_break_out_of_range_raises(self):
        with pytest.raises(ChannelError):
            Track(5, (5,))

    def test_break_zero_raises(self):
        with pytest.raises(ChannelError):
            Track(5, (0,))

    def test_unsorted_breaks_raise(self):
        with pytest.raises(ChannelError):
            Track(9, (6, 3))

    def test_duplicate_breaks_raise(self):
        with pytest.raises(ChannelError):
            Track(9, (3, 3))

    def test_empty_track_raises(self):
        with pytest.raises(ChannelError):
            Track(0)

    def test_segment_index_at(self):
        t = Track(9, (3, 6))
        assert [t.segment_index_at(c) for c in range(1, 10)] == [
            0, 0, 0, 1, 1, 1, 2, 2, 2,
        ]

    def test_segment_index_out_of_range(self):
        t = Track(9, (3, 6))
        with pytest.raises(ChannelError):
            t.segment_index_at(10)
        with pytest.raises(ChannelError):
            t.segment_index_at(0)

    def test_segment_end_at(self):
        t = Track(9, (3, 6))
        assert t.segment_end_at(1) == 3
        assert t.segment_end_at(4) == 6
        assert t.segment_end_at(9) == 9

    def test_segment_start_at(self):
        t = Track(9, (3, 6))
        assert t.segment_start_at(3) == 1
        assert t.segment_start_at(7) == 7

    def test_segments_spanned(self):
        t = Track(9, (3, 6))
        assert list(t.segments_spanned(2, 5)) == [0, 1]
        assert list(t.segments_spanned(4, 6)) == [1]
        assert list(t.segments_spanned(1, 9)) == [0, 1, 2]

    def test_segments_spanned_empty_raises(self):
        t = Track(9, (3, 6))
        with pytest.raises(ChannelError):
            t.segments_spanned(5, 4)

    def test_segments_occupied_counts(self):
        t = Track(9, (3, 6))
        assert t.segments_occupied(1, 3) == 1
        assert t.segments_occupied(3, 4) == 2
        assert t.segments_occupied(1, 7) == 3

    def test_fits_single_segment(self):
        t = Track(9, (3, 6))
        assert t.fits_single_segment(4, 6)
        assert not t.fits_single_segment(3, 4)

    def test_occupied_span_snaps_to_segments(self):
        t = Track(9, (3, 6))
        assert t.occupied_span(2, 4) == (1, 6)
        assert t.occupied_span(4, 5) == (4, 6)

    def test_extend_to_switches_is_occupied_span(self):
        t = Track(9, (3, 6))
        assert t.extend_to_switches(2, 4) == t.occupied_span(2, 4)

    def test_identical_comparison(self):
        assert Track(9, (3,)).is_identical_to(Track(9, (3,)))
        assert not Track(9, (3,)).is_identical_to(Track(9, (4,)))
        assert not Track(9, (3,)).is_identical_to(Track(8, (3,)))

    def test_iter_yields_bounds(self):
        assert list(Track(9, (3, 6))) == [(1, 3), (4, 6), (7, 9)]


class TestSegmentedChannel:
    def test_requires_tracks(self):
        with pytest.raises(ChannelError):
            SegmentedChannel([])

    def test_requires_equal_widths(self):
        with pytest.raises(ChannelError):
            SegmentedChannel([Track(9), Track(8)])

    def test_shape_properties(self):
        ch = channel_from_breaks(9, [(3, 6), (5,), ()])
        assert ch.n_tracks == 3
        assert ch.n_columns == 9
        assert ch.n_switches == 3
        assert ch.n_segments == 6
        assert len(ch) == 3

    def test_segment_lookup(self):
        ch = channel_from_breaks(9, [(3, 6)])
        seg = ch.segment(0, 1)
        assert (seg.left, seg.right) == (4, 6)
        assert seg.track == 0 and seg.index == 1

    def test_segments_iteration_order(self):
        ch = channel_from_breaks(9, [(3,), (6,)])
        segs = list(ch.segments())
        assert [(s.track, s.index) for s in segs] == [
            (0, 0), (0, 1), (1, 0), (1, 1),
        ]

    def test_segments_in_track(self):
        ch = channel_from_breaks(9, [(3, 6), ()])
        assert len(ch.segments_in_track(0)) == 3
        assert len(ch.segments_in_track(1)) == 1

    def test_segment_at(self):
        ch = channel_from_breaks(9, [(3, 6)])
        assert ch.segment_at(0, 5).index == 1

    def test_occupancy_delegation(self):
        ch = channel_from_breaks(9, [(3, 6)])
        assert ch.segments_occupied(0, 2, 5) == 2
        assert ch.fits_single_segment(0, 4, 6)
        assert ch.segment_end_at(0, 2) == 3
        assert ch.occupied_span(0, 2, 4) == (1, 6)
        assert len(ch.spanned_segments(0, 2, 4)) == 2

    def test_is_identically_segmented(self):
        assert identical_channel(3, 9, (3, 6)).is_identically_segmented()
        assert not channel_from_breaks(9, [(3,), (4,)]).is_identically_segmented()

    def test_max_segments_per_track(self):
        ch = channel_from_breaks(9, [(3, 6), (5,), ()])
        assert ch.max_segments_per_track() == 3

    def test_track_types_groups(self):
        ch = channel_from_breaks(9, [(3,), (5,), (3,), ()])
        groups = ch.track_types()
        assert groups[(3,)] == [0, 2]
        assert groups[(5,)] == [1]
        assert groups[()] == [3]

    def test_with_tracks_appended(self):
        ch = channel_from_breaks(9, [(3,)])
        bigger = ch.with_tracks_appended([Track(9, (5,))])
        assert bigger.n_tracks == 2
        assert ch.n_tracks == 1  # original untouched

    def test_equality_and_hash(self):
        a = channel_from_breaks(9, [(3,)])
        b = channel_from_breaks(9, [(3,)], name="other")
        assert a == b  # name is cosmetic
        assert hash(a) == hash(b)
        assert a != channel_from_breaks(9, [(4,)])


class TestBuilders:
    def test_unsegmented(self):
        ch = unsegmented_channel(3, 10)
        assert ch.n_segments == 3
        assert all(t.n_segments == 1 for t in ch)

    def test_fully_segmented(self):
        ch = fully_segmented_channel(2, 5)
        assert all(t.n_segments == 5 for t in ch)
        assert all(s.length == 1 for s in ch.segments())

    def test_identical(self):
        ch = identical_channel(4, 9, (3, 6))
        assert ch.is_identically_segmented()
        assert ch.n_tracks == 4

    def test_uniform(self):
        ch = uniform_channel(2, 10, 4)
        assert ch.track(0).segment_bounds == ((1, 4), (5, 8), (9, 10))

    def test_uniform_exact_division(self):
        ch = uniform_channel(1, 12, 4)
        assert ch.track(0).segment_bounds == ((1, 4), (5, 8), (9, 12))

    def test_uniform_bad_length(self):
        with pytest.raises(ChannelError):
            uniform_channel(1, 10, 0)

    def test_staggered_phases_differ(self):
        ch = staggered_channel(4, 24, 8)
        patterns = {t.breaks for t in ch}
        assert len(patterns) > 1  # offsets actually vary

    def test_staggered_valid_breaks(self):
        ch = staggered_channel(5, 17, 4)
        for t in ch:
            assert all(1 <= b < 17 for b in t.breaks)

    def test_channel_from_breaks_name(self):
        assert channel_from_breaks(5, [()], name="x").name == "x"

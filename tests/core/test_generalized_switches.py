"""Minimum-switch generalized routing tests."""

import random

import pytest

from repro.core.channel import channel_from_breaks, uniform_channel
from repro.core.connection import ConnectionSet
from repro.core.dp import route_dp
from repro.core.errors import RoutingInfeasibleError
from repro.core.generalized import (
    generalized_switch_count,
    route_generalized,
    route_generalized_min_switches,
)
from repro.core.routing import GeneralizedRouting


class TestSwitchCount:
    def test_single_segment_connection(self):
        ch = channel_from_breaks(9, [(4,)])
        cs = ConnectionSet.from_spans([(1, 3)])
        g = GeneralizedRouting(ch, cs, (((0, 1, 3),),))
        assert generalized_switch_count(g) == 2  # entry + exit cross

    def test_single_column_connection(self):
        ch = channel_from_breaks(9, [(4,)])
        cs = ConnectionSet.from_spans([(3, 3)])
        g = GeneralizedRouting(ch, cs, (((0, 3, 3),),))
        assert generalized_switch_count(g) == 1

    def test_join_counts_one(self):
        ch = channel_from_breaks(9, [(4,)])
        cs = ConnectionSet.from_spans([(2, 7)])
        g = GeneralizedRouting(ch, cs, (((0, 2, 7),),))
        assert generalized_switch_count(g) == 3  # 2 cross + 1 join

    def test_track_change_counts_two(self):
        ch = channel_from_breaks(9, [(4,), (4,)])
        cs = ConnectionSet.from_spans([(2, 7)])
        g = GeneralizedRouting(ch, cs, (((0, 2, 4), (1, 5, 7)),))
        assert generalized_switch_count(g) == 4  # 2 cross + 2 for the jog

    def test_join_split_across_pieces_same_track(self):
        # Two pieces on the same track meeting exactly at a break: still
        # one join switch.
        ch = channel_from_breaks(9, [(4,)])
        cs = ConnectionSet.from_spans([(2, 7)])
        g = GeneralizedRouting(ch, cs, (((0, 2, 4), (0, 5, 7)),))
        assert generalized_switch_count(g) == 3


class TestMinimization:
    def test_never_more_than_first_found(self):
        rng = random.Random(3)
        for _ in range(25):
            T = rng.randint(2, 3)
            N = rng.randint(6, 10)
            breaks = [
                tuple(sorted(rng.sample(range(1, N), rng.randint(0, 2))))
                for _ in range(T)
            ]
            ch = channel_from_breaks(N, breaks)
            spans = []
            for _ in range(rng.randint(1, 4)):
                l = rng.randint(1, N)
                spans.append((l, min(N, l + rng.randint(0, 4))))
            cs = ConnectionSet.from_spans(spans)
            try:
                plain = route_generalized(ch, cs)
            except RoutingInfeasibleError:
                continue
            optimal, n = route_generalized_min_switches(ch, cs)
            optimal.validate()
            assert n <= generalized_switch_count(plain)

    def test_avoids_gratuitous_weaving(self):
        # The first-found DP may weave connections across tracks for no
        # benefit; the minimizer must stay on single tracks when the
        # instance admits a plain routing of equal switch cost.
        ch = uniform_channel(4, 16, 4)
        cs = ConnectionSet.from_spans([(1, 3), (2, 7), (5, 12), (9, 16)])
        optimal, n = route_generalized_min_switches(ch, cs)
        optimal.validate()
        assert all(optimal.n_track_changes(i) == 0 for i in range(len(cs)))

    def test_matches_single_track_cost_when_possible(self):
        # When a single-track routing exists, the generalized optimum's
        # switch count is at most the best single-track embedding's.
        ch = channel_from_breaks(12, [(4, 8), (6,)])
        cs = ConnectionSet.from_spans([(1, 4), (5, 8), (9, 12), (2, 10)])
        single = route_dp(ch, cs)
        embedded = GeneralizedRouting.from_routing(single)
        _, n = route_generalized_min_switches(ch, cs)
        assert n <= generalized_switch_count(embedded)

    def test_weaving_used_only_when_needed(self):
        from repro.generators.paper_examples import fig4_channel, fig4_connections

        ch, cs = fig4_channel(), fig4_connections()
        optimal, n = route_generalized_min_switches(ch, cs)
        optimal.validate()
        changes = sum(optimal.n_track_changes(i) for i in range(len(cs)))
        assert changes == 1  # exactly the one forced weave

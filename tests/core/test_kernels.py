"""Kernel equivalence: packed and vectorized DP vs the tuple reference.

The load-bearing guarantee of :mod:`repro.core.kernels` is that the
fast kernels — packed (bit-packed frontiers, SWAR feasibility tests,
dominance pruning) and vectorized (the same encoding lifted to numpy
batches over whole levels) — are *observationally identical* to the
reference DP: same assignments, same infeasibility errors at the same
level, same optimal Problem-3 weights, and (with pruning off) the same
per-level node and edge counts.  The property suite here routes
hundreds of seeded random instances, mixed across K limits, weight
objectives, and infeasible cases, and asserts exactly that.
"""

from __future__ import annotations

import random

import pytest

from repro.core.channel import channel_from_breaks
from repro.core.connection import Connection, ConnectionSet
from repro.core.dp import route_dp, route_dp_with_stats
from repro.core.errors import ReproError, RoutingInfeasibleError
from repro.core.kernels import (
    KERNEL_ENV_VAR,
    active_kernel,
    consume_dp_pruned,
    run_dp_packed,
    run_dp_reference,
    run_dp_vectorized,
)
from repro.core.routing import occupied_length_weight, segment_count_weight
from repro.generators.random_instances import (
    random_channel,
    random_feasible_instance,
)


# ----------------------------------------------------------------------
# instance corpus
# ----------------------------------------------------------------------
def _random_connections(rng, n_columns, m):
    """Arbitrary (often infeasible) connection sets."""
    conns = []
    for j in range(m):
        left = rng.randint(1, max(1, n_columns - 1))
        right = rng.randint(left + 1, min(n_columns, left + rng.randint(1, 8)))
        conns.append(Connection(left, right, f"c{j}"))
    return ConnectionSet(conns)


def _corpus(n_instances, seed=0):
    """Seeded mixed corpus: (channel, connections, K, weight) tuples."""
    rng = random.Random(seed)
    out = []
    for trial in range(n_instances):
        T = rng.randint(1, 7)
        N = rng.randint(8, 64)
        ch = random_channel(T, N, rng.uniform(1.5, 6.0), seed=10_000 + trial)
        cs = _random_connections(rng, N, rng.randint(0, 14))
        K = rng.choice([None, None, 1, 2, 3])
        weight = rng.choice([
            None,
            occupied_length_weight(ch),
            segment_count_weight(ch),
        ])
        out.append((ch, cs, K, weight))
    return out


def _solve(kernel, ch, cs, K, weight, **kw):
    """Normalize a kernel run to (assignment, stats, error message)."""
    try:
        routing, stats = kernel(ch, cs, K, weight, **kw)
        return routing.assignment, stats, None
    except RoutingInfeasibleError as exc:
        return None, None, str(exc)


def _total_weight(cs, assignment, weight):
    return sum(weight(c, t) for c, t in zip(cs.connections, assignment))


# ----------------------------------------------------------------------
# the 300+ instance equivalence property
# ----------------------------------------------------------------------
class TestKernelEquivalence:
    CORPUS = _corpus(320)

    @pytest.mark.parametrize("chunk", range(8))
    def test_packed_matches_reference(self, chunk):
        """Identical assignments, identical infeasibility messages (hence
        identical failing level), identical stats modulo pruning counters —
        across 320 mixed random instances."""
        for ch, cs, K, weight in self.CORPUS[chunk::8]:
            ref_a, ref_s, ref_err = _solve(run_dp_reference, ch, cs, K, weight)
            pk_a, pk_s, pk_err = _solve(run_dp_packed, ch, cs, K, weight)
            np_a, np_s, np_err = _solve(
                run_dp_packed, ch, cs, K, weight, prune=False
            )

            # The error message embeds the 1-based failing level, so string
            # equality pins the level too.
            assert ref_err == pk_err == np_err
            assert ref_a == pk_a == np_a

            if ref_a is None:
                continue
            # DPStats identical modulo pruning counters: exactly equal with
            # pruning disabled ...
            assert ref_s.nodes_per_level == np_s.nodes_per_level
            assert ref_s.edges_per_level == np_s.edges_per_level
            assert ref_s.nodes_pruned_per_level == ()
            # ... and never-larger with it enabled, with the counters
            # accounting for every dropped frontier.
            assert len(pk_s.nodes_per_level) == len(ref_s.nodes_per_level)
            for kept, pruned, ref_n in zip(
                pk_s.nodes_per_level,
                pk_s.nodes_pruned_per_level,
                ref_s.nodes_per_level,
            ):
                assert kept <= ref_n
                assert kept + pruned >= kept  # counters are non-negative
            assert pk_s.kernel == "packed"
            assert ref_s.kernel == "reference"

    @pytest.mark.parametrize("chunk", range(8))
    def test_vectorized_matches_packed(self, chunk):
        """The array-native kernel is indistinguishable from packed:
        same assignments, same error messages, and — because both apply
        the same canonical tie-break and Pareto filter — exactly the
        same per-level node/edge/pruned counts, pruning on or off."""
        for ch, cs, K, weight in self.CORPUS[chunk::8]:
            for kw in ({}, {"prune": False}):
                pk_a, pk_s, pk_err = _solve(
                    run_dp_packed, ch, cs, K, weight, **kw
                )
                v_a, v_s, v_err = _solve(
                    run_dp_vectorized, ch, cs, K, weight, **kw
                )
                assert pk_err == v_err
                assert pk_a == v_a
                if pk_a is None:
                    continue
                assert pk_s.nodes_per_level == v_s.nodes_per_level
                assert pk_s.edges_per_level == v_s.edges_per_level
                assert (
                    pk_s.nodes_pruned_per_level == v_s.nodes_pruned_per_level
                )
                assert v_s.kernel == "vectorized"

    @pytest.mark.parametrize("chunk", range(4))
    def test_pruning_preserves_problem3_optimum(self, chunk):
        """Dominance pruning never changes an optimal Problem-3 weight."""
        checked = 0
        for ch, cs, K, weight in self.CORPUS[chunk::4]:
            if weight is None:
                continue
            ref_a, _, ref_err = _solve(run_dp_reference, ch, cs, K, weight)
            pk_a, _, pk_err = _solve(run_dp_packed, ch, cs, K, weight)
            assert ref_err == pk_err
            if ref_a is None:
                continue
            assert _total_weight(cs, ref_a, weight) == _total_weight(
                cs, pk_a, weight
            )
            checked += 1
        assert checked > 0


# ----------------------------------------------------------------------
# targeted behaviors
# ----------------------------------------------------------------------
def test_empty_connection_set():
    ch = random_channel(3, 12, 3.0, seed=1)
    cs = ConnectionSet(())
    for kernel in (run_dp_reference, run_dp_packed, run_dp_vectorized):
        routing, stats = kernel(ch, cs)
        assert routing.assignment == ()
        assert stats.nodes_per_level == ()


def test_single_track_channel():
    ch = channel_from_breaks(10, [(5,)])
    cs = ConnectionSet([Connection(1, 4, "a"), Connection(6, 9, "b")])
    for kernel in (run_dp_reference, run_dp_packed, run_dp_vectorized):
        routing, _ = kernel(ch, cs)
        assert routing.assignment == (0, 0)


def test_node_limit_raises_same_message():
    ch = random_channel(6, 60, 2.0, seed=7)
    rng = random.Random(7)
    cs = _random_connections(rng, 60, 12)
    ref = _solve(run_dp_reference, ch, cs, None, None, node_limit=3)
    pk = _solve(run_dp_packed, ch, cs, None, None, prune=False, node_limit=3)
    vec = _solve(
        run_dp_vectorized, ch, cs, None, None, prune=False, node_limit=3
    )
    assert ref[2] is not None and "node limit" in ref[2]
    assert ref[2] == pk[2] == vec[2]


def test_partial_mode_returns_stats_instead_of_raising():
    # (2,8) spans two segments of every track -> infeasible at level 2
    # under K=1.
    ch = channel_from_breaks(10, [(5,), (5,)])
    cs = ConnectionSet([Connection(1, 4, "a"), Connection(2, 8, "b")])
    for kernel in (run_dp_reference, run_dp_packed, run_dp_vectorized):
        with pytest.raises(RoutingInfeasibleError):
            kernel(ch, cs, 1)
        routing, stats = kernel(ch, cs, 1, partial=True)
        assert routing is None
        assert len(stats.nodes_per_level) == 1


def test_pruned_counter_consumed(monkeypatch):
    consume_dp_pruned()  # reset
    ch = random_channel(5, 140, 5.0, seed=3)
    rng = random.Random(11)
    cs = _random_connections(rng, 120, 10)
    _, stats, _ = _solve(run_dp_packed, ch, cs, None, None)
    if stats is not None and stats.total_pruned:
        assert consume_dp_pruned() == stats.total_pruned
    assert consume_dp_pruned() == 0  # consumed = reset


def test_dominance_prunes_on_real_instances():
    """The pruning must actually fire somewhere in the corpus — otherwise
    the equivalence suite is vacuously testing nothing."""
    total = 0
    for ch, cs, K, weight in TestKernelEquivalence.CORPUS:
        _, stats, _ = _solve(run_dp_packed, ch, cs, K, weight)
        if stats is not None:
            total += stats.total_pruned
    assert total > 0


def test_vectorized_wide_levels_match_packed():
    """A 10-track channel drives level widths into the hundreds
    (Theorem 5 growth), which is the regime the numpy path actually
    runs in — the mixed corpus above stays narrow enough that the
    adaptive kernel mostly picks the scalar loop."""
    ch = random_channel(10, 30, 4.0, seed=2)
    cs = random_feasible_instance(ch, 24, seed=41, mean_length=2.2)
    for kw in ({}, {"prune": False}):
        pk_r, pk_s = run_dp_packed(ch, cs, None, **kw)
        v_r, v_s = run_dp_vectorized(ch, cs, None, **kw)
        assert v_r.assignment == pk_r.assignment
        assert v_s.nodes_per_level == pk_s.nodes_per_level
        assert v_s.edges_per_level == pk_s.edges_per_level
        assert v_s.nodes_pruned_per_level == pk_s.nodes_pruned_per_level
    # the instance must actually exercise wide levels
    assert pk_s.max_level_width > 200


def test_vectorized_weighted_wide_levels_match_packed():
    ch = random_channel(10, 30, 4.0, seed=2)
    cs = random_feasible_instance(ch, 24, seed=42, mean_length=2.2)
    weight = occupied_length_weight(ch)
    pk_r, _ = run_dp_packed(ch, cs, None, weight)
    v_r, _ = run_dp_vectorized(ch, cs, None, weight)
    assert v_r.assignment == pk_r.assignment


def test_vectorized_falls_back_when_frontier_exceeds_machine_word():
    """T*b > 64 cannot pack into uint64; the kernel must delegate to
    packed (arbitrary-precision ints) and relabel the stats."""
    ch = random_channel(12, 120, 4.0, seed=1)  # b=8 -> 96 bits
    cs = random_feasible_instance(ch, 10, seed=7, mean_length=3.0)
    pk_r, pk_s = run_dp_packed(ch, cs, None)
    v_r, v_s = run_dp_vectorized(ch, cs, None)
    assert v_r.assignment == pk_r.assignment
    assert v_s.kernel == "vectorized"
    assert v_s.nodes_per_level == pk_s.nodes_per_level


def test_vectorized_pruned_counter_matches_packed():
    ch = random_channel(10, 30, 4.0, seed=2)
    cs = random_feasible_instance(ch, 24, seed=41, mean_length=2.2)
    consume_dp_pruned()
    _, pk_s = run_dp_packed(ch, cs, None)
    assert consume_dp_pruned() == pk_s.total_pruned
    _, v_s = run_dp_vectorized(ch, cs, None)
    assert consume_dp_pruned() == v_s.total_pruned == pk_s.total_pruned
    assert pk_s.total_pruned > 0


# ----------------------------------------------------------------------
# env dispatch
# ----------------------------------------------------------------------
def test_active_kernel_default_and_env(monkeypatch):
    monkeypatch.delenv(KERNEL_ENV_VAR, raising=False)
    assert active_kernel() == "packed"
    monkeypatch.setenv(KERNEL_ENV_VAR, "reference")
    assert active_kernel() == "reference"
    monkeypatch.setenv(KERNEL_ENV_VAR, " Packed ")
    assert active_kernel() == "packed"
    monkeypatch.setenv(KERNEL_ENV_VAR, "turbo")
    with pytest.raises(ReproError):
        active_kernel()


def test_route_dp_dispatches_on_env(monkeypatch):
    ch = random_channel(4, 40, 4.0, seed=5)
    rng = random.Random(5)
    cs = _random_connections(rng, 40, 6)
    results = {}
    for kernel_name in ("packed", "vectorized", "reference"):
        monkeypatch.setenv(KERNEL_ENV_VAR, kernel_name)
        try:
            routing, stats = route_dp_with_stats(ch, cs)
            results[kernel_name] = routing.assignment
            assert stats.kernel == kernel_name
        except RoutingInfeasibleError as exc:
            results[kernel_name] = str(exc)
    assert results["packed"] == results["vectorized"] == results["reference"]


def test_route_dp_same_result_both_kernels_weighted(monkeypatch):
    ch = random_channel(5, 50, 4.0, seed=9)
    rng = random.Random(9)
    cs = _random_connections(rng, 50, 8)
    weight = occupied_length_weight(ch)
    out = {}
    for kernel_name in ("packed", "vectorized", "reference"):
        monkeypatch.setenv(KERNEL_ENV_VAR, kernel_name)
        try:
            out[kernel_name] = route_dp(ch, cs, weight=weight).assignment
        except RoutingInfeasibleError as exc:
            out[kernel_name] = str(exc)
    assert out["packed"] == out["vectorized"] == out["reference"]

"""Instance decomposition tests."""

import random

import pytest

from repro.core.channel import channel_from_breaks, identical_channel
from repro.core.connection import ConnectionSet
from repro.core.decompose import clean_cuts, decompose, route_dp_decomposed
from repro.core.dp import route_dp, route_dp_with_stats
from repro.core.errors import RoutingInfeasibleError
from repro.core.routing import occupied_length_weight


class TestCleanCuts:
    def test_needs_all_track_switch(self):
        ch = channel_from_breaks(10, [(5,), ()])
        cs = ConnectionSet.from_spans([(1, 3), (7, 9)])
        assert clean_cuts(ch, cs) == []  # track 2 has no switch at 5

    def test_needs_no_spanning_connection(self):
        ch = identical_channel(2, 10, (5,))
        cs = ConnectionSet.from_spans([(3, 7)])
        assert clean_cuts(ch, cs) == []

    def test_finds_cut(self):
        ch = identical_channel(2, 10, (5,))
        cs = ConnectionSet.from_spans([(1, 4), (6, 9)])
        assert clean_cuts(ch, cs) == [5]

    def test_multiple_cuts(self):
        ch = identical_channel(2, 12, (4, 8))
        cs = ConnectionSet.from_spans([(1, 3), (5, 8), (9, 12)])
        assert clean_cuts(ch, cs) == [4, 8]


class TestDecompose:
    def test_groups_by_cut(self):
        ch = identical_channel(2, 12, (4, 8))
        cs = ConnectionSet.from_spans([(1, 3), (2, 4), (5, 8), (9, 12)])
        groups = decompose(ch, cs)
        assert [len(g) for g in groups] == [2, 1, 1]

    def test_no_cuts_single_group(self):
        ch = channel_from_breaks(10, [(5,), ()])
        cs = ConnectionSet.from_spans([(1, 3), (7, 9)])
        groups = decompose(ch, cs)
        assert len(groups) == 1

    def test_empty(self):
        ch = identical_channel(2, 10, (5,))
        assert decompose(ch, ConnectionSet([])) == []


class TestRouteDecomposed:
    def test_agrees_with_plain_dp(self):
        rng = random.Random(3)
        for _ in range(40):
            n_cols = 16
            ch = identical_channel(rng.randint(1, 3), n_cols, (4, 8, 12))
            spans = []
            for _ in range(rng.randint(1, 6)):
                l = rng.randint(1, n_cols)
                spans.append((l, min(n_cols, l + rng.randint(0, 6))))
            cs = ConnectionSet.from_spans(spans)
            plain_ok = True
            try:
                route_dp(ch, cs)
            except RoutingInfeasibleError:
                plain_ok = False
            try:
                route_dp_decomposed(ch, cs).validate()
                got = True
            except RoutingInfeasibleError:
                got = False
            assert got == plain_ok

    def test_weighted_optimum_preserved(self):
        ch = identical_channel(2, 12, (4, 8))
        cs = ConnectionSet.from_spans([(1, 3), (2, 4), (5, 7), (9, 11)])
        w = occupied_length_weight(ch)
        a = route_dp(ch, cs, weight=w)
        b = route_dp_decomposed(ch, cs, weight=w)
        b.validate()
        assert b.total_weight(w) == a.total_weight(w)

    def test_k_limit_respected(self):
        ch = identical_channel(2, 12, (4, 8))
        cs = ConnectionSet.from_spans([(1, 4), (5, 8), (9, 12)])
        r = route_dp_decomposed(ch, cs, max_segments=1)
        r.validate(1)

    def test_width_reduction_on_separable_instances(self):
        # A long identical channel with periodic all-track switches and
        # traffic confined between them: the decomposed run never sees
        # the full simultaneous occupancy.
        n_cols = 48
        ch = identical_channel(4, n_cols, tuple(range(8, n_cols, 8)))
        spans = []
        for base in range(0, n_cols, 8):
            spans += [
                (base + 1, base + 4),
                (base + 2, base + 6),
                (base + 5, base + 8),
            ]
        cs = ConnectionSet.from_spans(spans)
        _, stats = route_dp_with_stats(ch, cs)
        decomposed_groups = decompose(ch, cs)
        assert len(decomposed_groups) == 6
        r = route_dp_decomposed(ch, cs)
        r.validate()
        # Same feasibility; piecewise levels are narrower than the worst
        # single-shot level (each group re-starts from an empty frontier).
        widest_piece = 0
        for g in decomposed_groups:
            _, s = route_dp_with_stats(ch, g)
            widest_piece = max(widest_piece, s.max_level_width)
        assert widest_piece <= stats.max_level_width

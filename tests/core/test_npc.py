"""Tests for the NP-completeness machinery (Section III + Appendix)."""

import random

import pytest

from repro.core.channel import SegmentedChannel
from repro.core.connection import density
from repro.core.errors import ReproError, RoutingInfeasibleError
from repro.core.exact import route_exact
from repro.core.npc import (
    NMTSInstance,
    build_two_segment_instance,
    build_unlimited_instance,
    matching_from_routing,
    normalize_nmts,
    routing_from_matching,
    solve_nmts,
)


def _random_yes_instance(n, rng):
    """Random solvable NMTS instance (built from a hidden matching)."""
    xs = sorted(rng.sample(range(1, 30), n))
    ys = sorted(rng.sample(range(1, 30), n))
    perm = list(range(n))
    rng.shuffle(perm)
    zs = sorted(xs[perm[i]] + ys[i] for i in range(n))
    return NMTSInstance(tuple(xs), tuple(ys), tuple(zs))


class TestNMTSInstance:
    def test_balance_checked(self):
        with pytest.raises(ReproError):
            NMTSInstance((1, 2), (3, 4), (4, 7))

    def test_sortedness_checked(self):
        with pytest.raises(ReproError):
            NMTSInstance((2, 1), (3, 4), (4, 6))

    def test_positivity_checked(self):
        with pytest.raises(ReproError):
            NMTSInstance((0, 1), (3, 4), (3, 5))

    def test_check_solution(self):
        inst = NMTSInstance((2, 5, 8), (9, 11, 12), (11, 17, 19))
        assert inst.check_solution((0, 1, 2), (0, 2, 1))
        assert not inst.check_solution((0, 1, 2), (0, 1, 2))
        assert not inst.check_solution((0, 0, 2), (0, 2, 1))  # not a perm

    def test_example1_normalized(self):
        inst = NMTSInstance((2, 5, 8), (9, 11, 12), (11, 17, 19))
        assert inst.is_normalized()


class TestSolver:
    def test_example1(self):
        inst = NMTSInstance((2, 5, 8), (9, 11, 12), (11, 17, 19))
        sol = solve_nmts(inst)
        assert sol is not None
        assert inst.check_solution(*sol)

    def test_unsolvable(self):
        # sum matches but no pairing: z = (2+3, 4+5) needs both (x1,y1)
        # and... craft: xs=(1,10), ys=(1,10), zs=(2,20): 1+1=2, 10+10=20 OK
        # so use zs=(3,19): 3=1+2? no y=2. 19=10+9? no.
        inst = NMTSInstance((1, 10), (1, 10), (3, 19))
        assert solve_nmts(inst) is None

    def test_duplicate_values_handled(self):
        inst = NMTSInstance((1, 1), (2, 2), (3, 3))
        sol = solve_nmts(inst)
        assert sol is not None and inst.check_solution(*sol)

    def test_random_yes_instances(self):
        rng = random.Random(2)
        for _ in range(20):
            inst = _random_yes_instance(rng.randint(2, 5), rng)
            sol = solve_nmts(inst)
            assert sol is not None and inst.check_solution(*sol)

    def test_solver_agrees_with_brute_force(self):
        import itertools

        rng = random.Random(3)
        for _ in range(30):
            n = rng.randint(2, 3)
            xs = tuple(sorted(rng.randint(1, 8) for _ in range(n)))
            ys = tuple(sorted(rng.randint(1, 8) for _ in range(n)))
            total = sum(xs) + sum(ys)
            # random split of total into n positive parts (sorted)
            cuts = sorted(rng.sample(range(1, total), n - 1)) if n > 1 else []
            zs = tuple(
                sorted(
                    b - a
                    for a, b in zip([0] + cuts, cuts + [total])
                )
            )
            if any(z < 1 for z in zs):
                continue
            inst = NMTSInstance(xs, ys, zs)
            brute = any(
                all(xs[a[i]] + ys[b[i]] == zs[i] for i in range(n))
                for a in itertools.permutations(range(n))
                for b in itertools.permutations(range(n))
            )
            assert (solve_nmts(inst) is not None) == brute, inst


class TestNormalization:
    def test_solution_preserved(self):
        rng = random.Random(5)
        for _ in range(20):
            inst = _random_yes_instance(rng.randint(2, 4), rng)
            try:
                norm, m, p = normalize_nmts(inst)
            except ReproError:
                continue  # duplicate xs cannot be normalized
            assert norm.is_normalized()
            assert norm.xs[0] >= 2
            sol = solve_nmts(norm)
            assert sol is not None and norm.check_solution(*sol)

    def test_no_instances_stay_no(self):
        inst = NMTSInstance((1, 10), (1, 10), (3, 19))
        norm, _, _ = normalize_nmts(inst)
        assert solve_nmts(norm) is None

    def test_duplicate_xs_rejected(self):
        inst = NMTSInstance((2, 2), (3, 3), (5, 5))
        with pytest.raises(ReproError):
            normalize_nmts(inst)

    def test_already_normalized_untouched_up_to_x_shift(self):
        inst = NMTSInstance((2, 5, 8), (9, 11, 12), (11, 17, 19))
        norm, m, p = normalize_nmts(inst)
        assert (m, p) == (1, 0)
        assert norm == inst


class TestTheorem1Construction:
    def test_shape(self):
        inst = NMTSInstance((2, 5, 8), (9, 11, 12), (11, 17, 19))
        q = build_unlimited_instance(inst)
        n = 3
        assert q.channel.n_tracks == n * n
        assert q.channel.n_columns == 8 + 12 + 7
        # a(n) + b(n^2) + d(n) + e(n^2-n) + f(n^2)
        assert len(q.connections) == n + n * n + n + (n * n - n) + n * n

    def test_requires_normalized(self):
        inst = NMTSInstance((1, 2), (3, 4), (4, 6))
        with pytest.raises(ReproError):
            build_unlimited_instance(inst)

    def test_lemma1_roundtrip_example1(self):
        inst = NMTSInstance((2, 5, 8), (9, 11, 12), (11, 17, 19))
        q = build_unlimited_instance(inst)
        sol = solve_nmts(inst)
        routing = routing_from_matching(q, *sol)
        routing.validate()
        alpha, beta = matching_from_routing(q, routing)
        assert inst.check_solution(alpha, beta)

    def test_lemma1_roundtrip_random(self):
        rng = random.Random(7)
        done = 0
        while done < 6:
            inst = _random_yes_instance(rng.randint(2, 3), rng)
            try:
                norm, _, _ = normalize_nmts(inst)
            except ReproError:
                continue
            q = build_unlimited_instance(norm)
            sol = solve_nmts(norm)
            routing = routing_from_matching(q, *sol)
            routing.validate()
            alpha, beta = matching_from_routing(q, routing)
            assert norm.check_solution(alpha, beta)
            done += 1

    def test_reduction_iff_n2(self):
        """The heart of Theorem 1 on n=2 instances: Q routable <=> NMTS
        solvable, via independent solvers on both sides."""
        rng = random.Random(13)
        yes = no = 0
        while yes < 3 or no < 3:
            n = 2
            xs = tuple(sorted(rng.sample(range(2, 12), n)))
            ys = tuple(sorted(rng.sample(range(2, 12), n)))
            total = sum(xs) + sum(ys)
            lo = rng.randint(1, total - 1)
            zs = tuple(sorted((lo, total - lo)))
            if any(z < 1 for z in zs):
                continue
            inst = NMTSInstance(xs, ys, zs)
            try:
                norm, _, _ = normalize_nmts(inst)
                q = build_unlimited_instance(norm)
            except ReproError:
                # Trivially-NO instances rejected by the constructor.
                assert solve_nmts(inst) is None
                no += 1
                continue
            solvable = solve_nmts(norm) is not None
            try:
                routing = route_exact(q.channel, q.connections, node_limit=2_000_000)
                routable = True
            except RoutingInfeasibleError as exc:
                if "node limit" in str(exc):
                    continue
                routable = False
            assert routable == solvable, norm
            if solvable:
                yes += 1
                alpha, beta = matching_from_routing(q, routing)
                assert norm.check_solution(alpha, beta)
            else:
                no += 1


class TestTheorem2Construction:
    def test_shape(self):
        inst = NMTSInstance((2, 5, 8), (9, 11, 12), (11, 17, 19))
        q2 = build_two_segment_instance(inst)
        n = 3
        assert q2.channel.n_tracks == 2 * n * n - n
        assert q2.max_segments == 2
        assert q2.channel.max_segments_per_track() <= 5
        # a(n) + b(n^2) + e(n^2-n) + f(2n^2-n) + g(n^2-n)
        expected = n + n * n + (n * n - n) + (2 * n * n - n) + (n * n - n)
        assert len(q2.connections) == expected

    def test_yes_instance_2segment_routable(self):
        inst = NMTSInstance((2, 5, 8), (9, 11, 12), (11, 17, 19))
        q2 = build_two_segment_instance(inst)
        sol = solve_nmts(inst)
        routing = routing_from_matching(q2, *sol)
        routing.validate(max_segments=2)

    def test_lemma_direction_random(self):
        rng = random.Random(57)
        done = 0
        while done < 5:
            inst = _random_yes_instance(rng.randint(2, 3), rng)
            try:
                norm, _, _ = normalize_nmts(inst)
                q2 = build_two_segment_instance(norm)
            except ReproError:
                continue
            sol = solve_nmts(norm)
            routing = routing_from_matching(q2, *sol)
            routing.validate(max_segments=2)
            done += 1

    def test_reduction_iff_n2(self):
        rng = random.Random(29)
        yes = no = 0
        attempts = 0
        while (yes < 2 or no < 2) and attempts < 200:
            attempts += 1
            n = 2
            xs = tuple(sorted(rng.sample(range(2, 10), n)))
            ys = tuple(sorted(rng.sample(range(2, 10), n)))
            total = sum(xs) + sum(ys)
            lo = rng.randint(2, total - 2)
            zs = tuple(sorted((lo, total - lo)))
            inst = NMTSInstance(xs, ys, zs)
            try:
                norm, _, _ = normalize_nmts(inst)
                q2 = build_two_segment_instance(norm)
            except ReproError:
                assert solve_nmts(inst) is None
                no += 1
                continue
            solvable = solve_nmts(norm) is not None
            try:
                route_exact(
                    q2.channel, q2.connections, max_segments=2,
                    node_limit=3_000_000,
                )
                routable = True
            except RoutingInfeasibleError as exc:
                if "node limit" in str(exc):
                    continue
                routable = False
            assert routable == solvable, norm
            if solvable:
                yes += 1
            else:
                no += 1
        assert yes >= 2 and no >= 2

"""Tests for the exception hierarchy."""

import pytest

from repro.core import errors


def test_all_derive_from_repro_error():
    for name in (
        "ChannelError",
        "ConnectionError_",
        "RoutingInfeasibleError",
        "HeuristicFailure",
        "ValidationError",
        "FormatError",
    ):
        cls = getattr(errors, name)
        assert issubclass(cls, errors.ReproError)


def test_repro_error_is_exception():
    assert issubclass(errors.ReproError, Exception)


def test_connection_error_does_not_shadow_builtin():
    assert errors.ConnectionError_ is not ConnectionError
    assert not issubclass(errors.ConnectionError_, OSError)


def test_heuristic_failure_distinct_from_infeasible():
    assert not issubclass(errors.HeuristicFailure, errors.RoutingInfeasibleError)
    assert not issubclass(errors.RoutingInfeasibleError, errors.HeuristicFailure)


def test_catchable_as_family():
    with pytest.raises(errors.ReproError):
        raise errors.ValidationError("x")

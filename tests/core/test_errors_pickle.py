"""Every engine-raised error must survive a process boundary.

The engine ships failures from forked workers back to the parent — as
pickled exceptions (pool futures), as ``(type_name, message)`` tuples
over pipes, and as ``TaskOutcome.error_type`` strings.  All three paths
require that each :class:`ReproError` subclass (a) pickle round-trips
preserving its concrete type and message, and (b) is resolvable by name
from :mod:`repro.core.errors` so ``TaskOutcome.raise_error`` re-raises
the *typed* exception, not a generic one.
"""

import multiprocessing
import pickle

import pytest

import repro.core.errors as errors_module
from repro.core.errors import ReproError
from repro.engine.executor import TaskOutcome

_HAS_FORK = "fork" in multiprocessing.get_all_start_methods()


def all_error_classes():
    """Every concrete ReproError subclass exported by the errors module."""
    classes = [
        obj
        for obj in vars(errors_module).values()
        if isinstance(obj, type) and issubclass(obj, ReproError)
    ]
    assert len(classes) >= 10  # the taxonomy, not an accidental subset
    return classes


@pytest.mark.parametrize(
    "cls", all_error_classes(), ids=lambda cls: cls.__name__
)
class TestPickleRoundTrip:
    def test_type_and_message_survive(self, cls):
        exc = cls("worker 3 reporting: boom")
        restored = pickle.loads(pickle.dumps(exc))
        assert type(restored) is cls
        assert str(restored) == "worker 3 reporting: boom"

    def test_resolvable_by_name(self, cls):
        # The pipe / TaskOutcome protocols ship only the type *name*.
        resolved = getattr(errors_module, cls.__name__)
        assert resolved is cls

    def test_raise_error_restores_type(self, cls):
        outcome = TaskOutcome(
            index=0, error_type=cls.__name__, error="typed failure"
        )
        with pytest.raises(cls, match="typed failure"):
            outcome.raise_error()


def _raise_named(name):
    raise getattr(errors_module, name)(f"raised in pid-isolated worker: {name}")


@pytest.mark.skipif(not _HAS_FORK, reason="needs fork start method")
def test_errors_cross_process_boundary():
    """An exception raised in a pool worker arrives typed in the parent."""
    from concurrent.futures import ProcessPoolExecutor

    names = [cls.__name__ for cls in all_error_classes()]
    ctx = multiprocessing.get_context("fork")
    with ProcessPoolExecutor(max_workers=1, mp_context=ctx) as pool:
        for name in names:
            with pytest.raises(getattr(errors_module, name)) as excinfo:
                pool.submit(_raise_named, name).result()
            assert name in str(excinfo.value)


def test_unknown_error_type_degrades_to_repro_error():
    outcome = TaskOutcome(index=0, error_type="SegfaultFromMars", error="???")
    with pytest.raises(ReproError, match="SegfaultFromMars"):
        outcome.raise_error()

"""Exactness of the greedy routers (Theorems 3 and 4), proven empirically.

Theorem 3: the 1-segment greedy succeeds iff a 1-segment routing exists.
Theorem 4: the pool greedy succeeds iff any routing exists on channels
with at most two segments per track.

Both are checked against two independent oracles — the assignment-graph
DP and the raw brute-force assignment enumeration — over exhaustive small
instance families and randomized larger ones.
"""

import itertools
import random

import pytest

from repro.core.channel import channel_from_breaks
from repro.core.connection import ConnectionSet
from repro.core.dp import route_dp
from repro.core.errors import RoutingInfeasibleError
from repro.core.greedy import (
    route_one_segment_greedy,
    route_two_segment_tracks_greedy,
)
from tests.conftest import brute_force_routable


def _greedy1_ok(ch, cs):
    try:
        route_one_segment_greedy(ch, cs).validate(max_segments=1)
        return True
    except RoutingInfeasibleError:
        return False


def _greedy2_ok(ch, cs):
    try:
        route_two_segment_tracks_greedy(ch, cs).validate()
        return True
    except RoutingInfeasibleError:
        return False


def _dp_ok(ch, cs, k=None):
    try:
        route_dp(ch, cs, max_segments=k).validate(k)
        return True
    except RoutingInfeasibleError:
        return False


class TestTheorem3Exhaustive:
    def test_against_dp_on_enumerated_instances(self):
        n = 6
        spans = [(l, r) for l in range(1, n + 1) for r in range(l, n + 1)]
        breaks_options = [(), (2,), (4,), (2, 4)]
        checked = 0
        for b1, b2 in itertools.product(breaks_options, repeat=2):
            ch = channel_from_breaks(n, [b1, b2])
            for combo in itertools.combinations(spans, 2):
                cs = ConnectionSet.from_spans(list(combo))
                assert _greedy1_ok(ch, cs) == _dp_ok(ch, cs, k=1), (
                    b1, b2, combo,
                )
                checked += 1
        assert checked > 1000

    def test_against_brute_force_three_connections(self):
        ch = channel_from_breaks(6, [(2,), (3,), (2, 4)])
        spans = [(1, 2), (2, 3), (3, 4), (4, 6), (5, 6), (1, 4)]
        for combo in itertools.combinations(spans, 3):
            cs = ConnectionSet.from_spans(list(combo))
            assert _greedy1_ok(ch, cs) == brute_force_routable(ch, cs, 1), combo


class TestTheorem3Random:
    @pytest.mark.parametrize("seed", range(8))
    def test_random_instances(self, seed):
        rng = random.Random(seed)
        for _ in range(30):
            T = rng.randint(2, 4)
            N = rng.randint(6, 14)
            breaks = [
                tuple(sorted(rng.sample(range(1, N), rng.randint(0, 3))))
                for _ in range(T)
            ]
            ch = channel_from_breaks(N, breaks)
            M = rng.randint(1, 6)
            spans = []
            for _ in range(M):
                l = rng.randint(1, N)
                spans.append((l, min(N, l + rng.randint(0, 5))))
            cs = ConnectionSet.from_spans(spans)
            assert _greedy1_ok(ch, cs) == _dp_ok(ch, cs, k=1)


class TestTheorem4Exhaustive:
    def test_against_dp_on_enumerated_instances(self):
        n = 6
        spans = [(l, r) for l in range(1, n + 1) for r in range(l, n + 1)]
        breaks_options = [(), (2,), (4,)]
        checked = 0
        for b1, b2 in itertools.product(breaks_options, repeat=2):
            ch = channel_from_breaks(n, [b1, b2])
            for combo in itertools.combinations(spans, 2):
                cs = ConnectionSet.from_spans(list(combo))
                assert _greedy2_ok(ch, cs) == _dp_ok(ch, cs), (b1, b2, combo)
                checked += 1
        assert checked > 500

    def test_three_tracks_three_connections(self):
        ch = channel_from_breaks(6, [(2,), (4,), ()])
        spans = [(1, 2), (2, 4), (3, 5), (4, 6), (1, 5), (5, 6)]
        for combo in itertools.combinations_with_replacement(spans, 3):
            cs = ConnectionSet.from_spans(list(combo))
            assert _greedy2_ok(ch, cs) == _dp_ok(ch, cs), combo


class TestTheorem4Random:
    @pytest.mark.parametrize("seed", range(8))
    def test_random_instances(self, seed):
        rng = random.Random(100 + seed)
        for _ in range(30):
            T = rng.randint(2, 5)
            N = rng.randint(6, 14)
            breaks = []
            for _ in range(T):
                if rng.random() < 0.3:
                    breaks.append(())
                else:
                    breaks.append((rng.randint(1, N - 1),))
            ch = channel_from_breaks(N, breaks)
            M = rng.randint(1, 7)
            spans = []
            for _ in range(M):
                l = rng.randint(1, N)
                spans.append((l, min(N, l + rng.randint(0, 6))))
            cs = ConnectionSet.from_spans(spans)
            assert _greedy2_ok(ch, cs) == _dp_ok(ch, cs)

"""Tests for the Fig. 7 matching reduction (optimal 1-segment routing)."""

import itertools
import random

import pytest

from repro.core.channel import channel_from_breaks
from repro.core.connection import ConnectionSet
from repro.core.errors import RoutingInfeasibleError
from repro.core.exact import route_exact_optimal
from repro.core.greedy import route_one_segment_greedy
from repro.core.matching import (
    one_segment_bipartite_graph,
    one_segment_feasible,
    route_one_segment_matching,
)
from repro.core.routing import occupied_length_weight


class TestGraphConstruction:
    def test_fig7_shape(self, fig3):
        ch, cs = fig3
        segments, adjacency = one_segment_bipartite_graph(ch, cs)
        assert len(segments) == 8  # s11..s13, s21..s23, s31..s32
        assert len(adjacency) == 5
        # c1=(1,3) fits s21=(1,3) and s31=(1,5) only.
        fits = {
            (segments[si].track, segments[si].index) for si in adjacency[0]
        }
        assert fits == {(1, 0), (2, 0)}

    def test_edges_are_containments(self):
        ch = channel_from_breaks(9, [(3, 6), ()])
        cs = ConnectionSet.from_spans([(2, 5), (4, 6)])
        segments, adjacency = one_segment_bipartite_graph(ch, cs)
        for i, c in enumerate(cs):
            for si in adjacency[i]:
                assert segments[si].covers(c.left, c.right)


class TestFeasibility:
    def test_matches_greedy_enumerated(self):
        ch = channel_from_breaks(6, [(3,), (2, 4)])
        spans = [(l, r) for l in range(1, 7) for r in range(l, 7)]
        for combo in itertools.combinations(spans, 2):
            cs = ConnectionSet.from_spans(list(combo))
            greedy_ok = True
            try:
                route_one_segment_greedy(ch, cs)
            except RoutingInfeasibleError:
                greedy_ok = False
            assert one_segment_feasible(ch, cs) == greedy_ok, combo

    def test_empty_feasible(self):
        ch = channel_from_breaks(6, [(3,)])
        assert one_segment_feasible(ch, ConnectionSet([]))


class TestRouting:
    def test_unweighted_routes(self, fig3):
        ch, cs = fig3
        r = route_one_segment_matching(ch, cs)
        r.validate(max_segments=1)

    def test_infeasible_raises(self):
        ch = channel_from_breaks(6, [(3,)])
        cs = ConnectionSet.from_spans([(1, 2), (2, 3)])
        with pytest.raises(RoutingInfeasibleError):
            route_one_segment_matching(ch, cs)

    def test_connection_fits_nothing(self):
        ch = channel_from_breaks(6, [(3,)])
        cs = ConnectionSet.from_spans([(2, 5)])
        with pytest.raises(RoutingInfeasibleError):
            route_one_segment_matching(ch, cs)

    def test_empty(self):
        ch = channel_from_breaks(6, [(3,)])
        assert route_one_segment_matching(ch, ConnectionSet([])).assignment == ()


class TestOptimality:
    def test_minimum_weight_vs_exact(self):
        rng = random.Random(31)
        for _ in range(40):
            T = rng.randint(2, 4)
            N = rng.randint(6, 12)
            breaks = [
                tuple(sorted(rng.sample(range(1, N), rng.randint(0, 3))))
                for _ in range(T)
            ]
            ch = channel_from_breaks(N, breaks)
            spans = []
            for _ in range(rng.randint(1, 5)):
                l = rng.randint(1, N)
                spans.append((l, min(N, l + rng.randint(0, 3))))
            cs = ConnectionSet.from_spans(spans)
            w = occupied_length_weight(ch)
            try:
                expected = route_exact_optimal(
                    ch, cs, w, max_segments=1
                ).total_weight(w)
            except RoutingInfeasibleError:
                with pytest.raises(RoutingInfeasibleError):
                    route_one_segment_matching(ch, cs, weight=w)
                continue
            got = route_one_segment_matching(ch, cs, weight=w)
            got.validate(max_segments=1)
            assert got.total_weight(w) == pytest.approx(expected)

    def test_prefers_tight_segments(self):
        # Two tracks: one tight segment, one wasteful; the optimal
        # matching takes the tight one.
        ch = channel_from_breaks(10, [(4,), ()])
        cs = ConnectionSet.from_spans([(1, 4)])
        w = occupied_length_weight(ch)
        r = route_one_segment_matching(ch, cs, weight=w)
        assert r.assignment == (0,)

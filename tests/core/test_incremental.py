"""Tests for incremental (ECO) routing."""

import random

import pytest

from repro.core.channel import channel_from_breaks
from repro.core.connection import Connection, ConnectionSet
from repro.core.dp import route_dp
from repro.core.errors import RoutingInfeasibleError
from repro.core.incremental import (
    IncrementalRouter,
    insert_connection,
    remove_connection,
)
from repro.core.routing import Routing


@pytest.fixture
def channel():
    return channel_from_breaks(12, [(4, 8), (6,), ()])


def _routed(channel, spans):
    cs = ConnectionSet.from_spans(spans)
    return route_dp(channel, cs)


class TestInsert:
    def test_direct_insert(self, channel):
        r = _routed(channel, [(1, 4), (5, 8)])
        r2 = insert_connection(r, Connection(9, 12, "new"))
        r2.validate()
        assert len(r2.connections) == 3

    def test_direct_prefers_tight_fit(self, channel):
        r = Routing(channel, ConnectionSet([]), ())
        r2 = insert_connection(r, Connection(1, 4, "new"))
        # (1,4) fits exactly in track 0's first segment: the tightest.
        assert r2.assignment == (0,)

    def test_ripup_insert(self, channel):
        # Block the only direct options so a rip-up is needed.
        r = _routed(channel, [(2, 6), (1, 10)])
        # (1,4): track0 segment (1,4) blocked by... construct carefully:
        new = Connection(3, 4, "new")
        r2 = insert_connection(r, new)
        r2.validate()
        assert new in r2.connections.connections

    def test_insert_duplicate_rejected(self, channel):
        cs = ConnectionSet([Connection(1, 4, "a")])
        r = Routing(channel, cs, (0,))
        with pytest.raises(RoutingInfeasibleError):
            insert_connection(r, Connection(1, 4, "a"))

    def test_insert_infeasible(self):
        ch = channel_from_breaks(6, [()])
        r = Routing(ch, ConnectionSet([Connection(1, 4, "a")]), (0,))
        with pytest.raises(RoutingInfeasibleError):
            insert_connection(r, Connection(3, 6, "b"))

    def test_respects_k(self, channel):
        r = Routing(channel, ConnectionSet([]), ())
        r2 = insert_connection(r, Connection(1, 10, "long"), max_segments=1)
        r2.validate(max_segments=1)
        assert r2.assignment == (2,)  # only the unsegmented track

    def test_matches_from_scratch_feasibility(self, channel):
        rng = random.Random(3)
        for _ in range(25):
            spans = []
            for _ in range(rng.randint(1, 4)):
                l = rng.randint(1, 12)
                spans.append((l, min(12, l + rng.randint(0, 6))))
            base = spans[:-1]
            extra = spans[-1]
            cs_all = ConnectionSet.from_spans(spans)
            try:
                route_dp(channel, cs_all)
                should_work = True
            except RoutingInfeasibleError:
                should_work = False
            try:
                r = (
                    route_dp(channel, ConnectionSet.from_spans(base))
                    if base
                    else Routing(channel, ConnectionSet([]), ())
                )
            except RoutingInfeasibleError:
                continue
            name = f"x{rng.randrange(10**6)}"
            try:
                r2 = insert_connection(r, Connection(extra[0], extra[1], name))
                r2.validate()
                worked = True
            except RoutingInfeasibleError:
                worked = False
            assert worked == should_work


class TestRemove:
    def test_remove_frees_segments(self, channel):
        r = _routed(channel, [(1, 4), (5, 8)])
        c = r.connections[0]
        r2 = remove_connection(r, c)
        assert len(r2.connections) == 1
        r2.validate()

    def test_remove_then_reinsert(self, channel):
        r = _routed(channel, [(1, 4), (5, 8)])
        c = r.connections[0]
        r2 = remove_connection(r, c)
        r3 = insert_connection(r2, c)
        r3.validate()
        assert len(r3.connections) == 2


class TestIncrementalRouter:
    def test_session(self, channel):
        session = IncrementalRouter(channel, max_segments=2)
        a = Connection(1, 4, "a")
        b = Connection(5, 8, "b")
        session.insert(a)
        session.insert(b)
        assert len(session) == 2
        session.routing.validate(2)
        session.remove(a)
        assert len(session) == 1

    def test_session_many_random(self, channel):
        rng = random.Random(9)
        session = IncrementalRouter(channel)
        inserted = []
        for i in range(12):
            l = rng.randint(1, 12)
            c = Connection(l, min(12, l + rng.randint(0, 4)), f"n{i}")
            try:
                session.insert(c)
                inserted.append(c)
            except RoutingInfeasibleError:
                pass
            if inserted and rng.random() < 0.3:
                session.remove(inserted.pop(rng.randrange(len(inserted))))
            session.routing.validate()
        assert len(session) == len(inserted)

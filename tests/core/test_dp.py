"""Tests for the assignment-graph DP (Section IV-B)."""

import itertools
import random

import pytest

from repro.analysis.complexity import theorem5_bound, theorem6_bound
from repro.core.channel import channel_from_breaks, fully_segmented_channel
from repro.core.connection import ConnectionSet
from repro.core.dp import assignment_graph_levels, route_dp, route_dp_with_stats
from repro.core.errors import RoutingInfeasibleError
from repro.core.exact import count_routings, route_exact_optimal
from repro.core.routing import occupied_length_weight, segment_count_weight


class TestRouteDP:
    def test_basic(self):
        ch = channel_from_breaks(9, [(3, 6), (5,)])
        cs = ConnectionSet.from_spans([(1, 3), (4, 6), (7, 9), (1, 5)])
        route_dp(ch, cs).validate()

    def test_k_segment(self):
        ch = channel_from_breaks(9, [(3, 6), ()])
        cs = ConnectionSet.from_spans([(1, 8)])
        r = route_dp(ch, cs, max_segments=1)
        assert r.assignment == (1,)

    def test_infeasible(self):
        ch = channel_from_breaks(6, [()])
        cs = ConnectionSet.from_spans([(1, 3), (2, 5)])
        with pytest.raises(RoutingInfeasibleError):
            route_dp(ch, cs)

    def test_empty(self):
        ch = channel_from_breaks(6, [()])
        assert route_dp(ch, ConnectionSet([])).assignment == ()

    def test_node_limit(self):
        ch = fully_segmented_channel(4, 12)
        cs = ConnectionSet.from_spans([(i, i + 1) for i in range(1, 11)])
        with pytest.raises(RoutingInfeasibleError, match="node limit"):
            route_dp(ch, cs, node_limit=2)

    def test_feasibility_matches_exact_enumerated(self):
        ch = channel_from_breaks(6, [(3,), (2, 4)])
        spans = [(1, 2), (2, 4), (3, 6), (5, 6), (1, 6), (4, 5)]
        for m in (2, 3):
            for combo in itertools.combinations_with_replacement(spans, m):
                cs = ConnectionSet.from_spans(list(combo))
                dp_ok = True
                try:
                    route_dp(ch, cs).validate()
                except RoutingInfeasibleError:
                    dp_ok = False
                assert dp_ok == (count_routings(ch, cs) > 0), combo

    def test_feasibility_matches_exact_random_k(self):
        rng = random.Random(11)
        for _ in range(60):
            T = rng.randint(2, 4)
            N = rng.randint(6, 12)
            breaks = [
                tuple(sorted(rng.sample(range(1, N), rng.randint(0, 3))))
                for _ in range(T)
            ]
            ch = channel_from_breaks(N, breaks)
            spans = []
            for _ in range(rng.randint(1, 6)):
                l = rng.randint(1, N)
                spans.append((l, min(N, l + rng.randint(0, 5))))
            cs = ConnectionSet.from_spans(spans)
            k = rng.choice([None, 1, 2])
            dp_ok = True
            try:
                route_dp(ch, cs, max_segments=k).validate(k)
            except RoutingInfeasibleError:
                dp_ok = False
            assert dp_ok == (count_routings(ch, cs, max_segments=k) > 0)


class TestWeightedDP:
    def test_optimal_matches_branch_and_bound(self):
        rng = random.Random(23)
        for _ in range(40):
            T = rng.randint(2, 3)
            N = rng.randint(6, 12)
            breaks = [
                tuple(sorted(rng.sample(range(1, N), rng.randint(0, 2))))
                for _ in range(T)
            ]
            ch = channel_from_breaks(N, breaks)
            spans = []
            for _ in range(rng.randint(1, 5)):
                l = rng.randint(1, N)
                spans.append((l, min(N, l + rng.randint(0, 4))))
            cs = ConnectionSet.from_spans(spans)
            w = occupied_length_weight(ch)
            try:
                expected = route_exact_optimal(ch, cs, w).total_weight(w)
            except RoutingInfeasibleError:
                with pytest.raises(RoutingInfeasibleError):
                    route_dp(ch, cs, weight=w)
                continue
            got = route_dp(ch, cs, weight=w)
            got.validate()
            assert got.total_weight(w) == expected

    def test_problem3_subsumes_problem2(self):
        # With the segment-count weight, an optimal routing minimizes the
        # total number of segments; if a 1-segment routing exists, the
        # optimum uses M segments.
        ch = channel_from_breaks(9, [(3, 6), (4,)])
        cs = ConnectionSet.from_spans([(1, 3), (5, 9)])
        w = segment_count_weight(ch)
        r = route_dp(ch, cs, weight=w)
        assert r.total_weight(w) == 2.0
        assert r.max_segments_used() == 1


class TestStatsAndBounds:
    def test_stats_shape(self):
        ch = channel_from_breaks(9, [(3, 6), (5,)])
        cs = ConnectionSet.from_spans([(1, 3), (4, 6), (7, 9)])
        routing, stats = route_dp_with_stats(ch, cs)
        routing.validate()
        assert len(stats.nodes_per_level) == len(cs)
        assert stats.nodes_per_level[-1] == 1  # normalized final level
        assert stats.max_level_width >= 1
        assert stats.total_edges >= stats.total_nodes - 1

    def test_theorem5_bound_holds(self):
        rng = random.Random(3)
        for _ in range(20):
            T = rng.randint(2, 4)
            N = 10
            breaks = [
                tuple(sorted(rng.sample(range(1, N), rng.randint(0, 4))))
                for _ in range(T)
            ]
            ch = channel_from_breaks(N, breaks)
            spans = []
            for _ in range(rng.randint(2, 6)):
                l = rng.randint(1, N)
                spans.append((l, min(N, l + rng.randint(0, 4))))
            cs = ConnectionSet.from_spans(spans)
            try:
                _, stats = route_dp_with_stats(ch, cs)
            except RoutingInfeasibleError:
                continue
            assert stats.max_level_width <= theorem5_bound(T)

    def test_theorem6_bound_holds(self):
        rng = random.Random(4)
        for _ in range(20):
            T = rng.randint(2, 4)
            N = 10
            K = rng.choice([1, 2])
            breaks = [
                tuple(sorted(rng.sample(range(1, N), rng.randint(0, 4))))
                for _ in range(T)
            ]
            ch = channel_from_breaks(N, breaks)
            spans = []
            for _ in range(rng.randint(2, 6)):
                l = rng.randint(1, N)
                spans.append((l, min(N, l + rng.randint(0, 4))))
            cs = ConnectionSet.from_spans(spans)
            try:
                _, stats = route_dp_with_stats(ch, cs, max_segments=K)
            except RoutingInfeasibleError:
                continue
            assert stats.max_level_width <= theorem6_bound(T, K)

    def test_assignment_graph_levels_on_infeasible(self):
        ch = channel_from_breaks(6, [()])
        cs = ConnectionSet.from_spans([(1, 3), (2, 5), (4, 6)])
        levels = assignment_graph_levels(ch, cs)
        assert len(levels) < len(cs)  # graph died early

    def test_assignment_graph_levels_on_feasible(self):
        ch = channel_from_breaks(6, [(3,), ()])
        cs = ConnectionSet.from_spans([(1, 3), (4, 6)])
        levels = assignment_graph_levels(ch, cs)
        assert len(levels) == 2

"""Edge-of-the-model tests: degenerate channels and extreme connections."""

import pytest

from repro.core.api import route
from repro.core.channel import (
    Track,
    channel_from_breaks,
    fully_segmented_channel,
    unsegmented_channel,
)
from repro.core.connection import Connection, ConnectionSet, density
from repro.core.dp import route_dp
from repro.core.errors import RoutingInfeasibleError
from repro.core.generalized import route_generalized
from repro.core.greedy import route_one_segment_greedy


class TestOneColumnChannel:
    def test_single_column_track(self):
        t = Track(1)
        assert t.segment_bounds == ((1, 1),)
        assert t.segments_occupied(1, 1) == 1

    def test_route_single_column(self):
        ch = channel_from_breaks(1, [(), ()])
        cs = ConnectionSet.from_spans([(1, 1), (1, 1)])
        r = route_dp(ch, cs)
        r.validate()
        assert set(r.assignment) == {0, 1}

    def test_overflow_single_column(self):
        ch = channel_from_breaks(1, [()])
        cs = ConnectionSet.from_spans([(1, 1), (1, 1)])
        with pytest.raises(RoutingInfeasibleError):
            route_dp(ch, cs)


class TestFullWidthConnections:
    def test_full_width_takes_whole_track(self):
        ch = channel_from_breaks(10, [(5,), ()])
        cs = ConnectionSet.from_spans([(1, 10), (1, 10)])
        r = route_dp(ch, cs)
        r.validate()
        assert set(r.assignment) == {0, 1}

    def test_full_width_k1_only_unsegmented(self):
        ch = channel_from_breaks(10, [(5,), ()])
        cs = ConnectionSet.from_spans([(1, 10)])
        r = route_one_segment_greedy(ch, cs)
        assert r.assignment == (1,)


class TestSingleTrack:
    def test_sequential_fill(self):
        ch = channel_from_breaks(12, [(4, 8)])
        cs = ConnectionSet.from_spans([(1, 4), (5, 8), (9, 12)])
        route_dp(ch, cs).validate()

    def test_generalized_single_track_equals_plain(self):
        ch = channel_from_breaks(12, [(4, 8)])
        cs = ConnectionSet.from_spans([(1, 4), (5, 8), (9, 12)])
        g = route_generalized(ch, cs)
        g.validate()
        assert all(len(p) == 1 for p in g.pieces)


class TestMaximallySegmented:
    def test_unit_segments_route_anything_within_density(self):
        ch = fully_segmented_channel(3, 10)
        cs = ConnectionSet.from_spans([(1, 5), (3, 8), (6, 10)])
        assert density(cs) <= 3
        route_dp(ch, cs).validate()

    def test_unit_segments_k_counts_exactly_length(self):
        ch = fully_segmented_channel(1, 10)
        cs = ConnectionSet.from_spans([(2, 6)])
        r = route_dp(ch, cs)
        assert r.segments_used_count(0) == 5
        with pytest.raises(RoutingInfeasibleError):
            route_dp(ch, cs, max_segments=4)


class TestManyIdenticalConnections:
    def test_stack_exactly_fills(self):
        ch = unsegmented_channel(5, 6)
        cs = ConnectionSet(
            [Connection(2, 5, f"c{i}") for i in range(5)]
        )
        r = route_dp(ch, cs)
        assert sorted(r.assignment) == [0, 1, 2, 3, 4]

    def test_one_too_many(self):
        ch = unsegmented_channel(5, 6)
        cs = ConnectionSet(
            [Connection(2, 5, f"c{i}") for i in range(6)]
        )
        with pytest.raises(RoutingInfeasibleError):
            route_dp(ch, cs)


class TestAutoFacadeOnEdges:
    def test_empty_everything(self):
        ch = channel_from_breaks(5, [()])
        r = route(ch, ConnectionSet([]))
        assert r.assignment == ()

    def test_one_connection_one_track(self):
        ch = channel_from_breaks(5, [(2,)])
        r = route(ch, ConnectionSet.from_spans([(3, 5)]))
        r.validate()

    def test_k_zero_rejected_by_validation(self):
        ch = channel_from_breaks(5, [()])
        cs = ConnectionSet.from_spans([(1, 2)])
        # K=0 can never hold (every routed connection occupies >= 1
        # segment); the DP proves infeasibility.
        with pytest.raises(RoutingInfeasibleError):
            route_dp(ch, cs, max_segments=0)

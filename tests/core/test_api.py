"""Tests for the route() facade."""

import pytest

from repro.core.api import ALGORITHMS, route
from repro.core.channel import channel_from_breaks, identical_channel
from repro.core.connection import ConnectionSet
from repro.core.errors import HeuristicFailure, RoutingInfeasibleError
from repro.core.routing import occupied_length_weight


@pytest.fixture
def channel():
    return channel_from_breaks(9, [(3, 6), (5,), ()])


@pytest.fixture
def conns():
    return ConnectionSet.from_spans([(1, 3), (4, 6), (7, 9), (2, 5)])


class TestDispatch:
    def test_unknown_algorithm(self, channel, conns):
        with pytest.raises(ValueError):
            route(channel, conns, algorithm="magic")

    @pytest.mark.parametrize(
        "alg", [a for a in ALGORITHMS if a not in ("left_edge", "greedy2")]
    )
    def test_every_algorithm_routes_or_reports(self, channel, conns, alg):
        if alg in ("greedy1", "matching"):
            cs = ConnectionSet.from_spans([(1, 3), (4, 6), (7, 9)])
            r = route(channel, cs, algorithm=alg)
            r.validate(max_segments=1)
        else:
            r = route(channel, conns, algorithm=alg)
            r.validate()

    def test_left_edge_on_identical(self, conns):
        ch = identical_channel(3, 9, (3, 6))
        r = route(ch, conns, algorithm="left_edge")
        r.validate()

    def test_greedy2_on_two_segment_channel(self):
        ch = channel_from_breaks(9, [(4,), (6,)])
        cs = ConnectionSet.from_spans([(1, 3), (5, 9)])
        route(ch, cs, algorithm="greedy2").validate()

    def test_auto_identical_uses_left_edge(self, conns):
        ch = identical_channel(3, 9, (3, 6))
        route(ch, conns).validate()

    def test_auto_k1(self, channel):
        cs = ConnectionSet.from_spans([(1, 3), (4, 6), (7, 9)])
        r = route(channel, cs, max_segments=1)
        r.validate(max_segments=1)
        assert r.max_segments_used() == 1

    def test_auto_k1_weighted(self, channel):
        cs = ConnectionSet.from_spans([(1, 3), (7, 9)])
        w = occupied_length_weight(channel)
        r = route(channel, cs, max_segments=1, weight=w)
        r.validate(max_segments=1)

    def test_auto_weighted_general(self, channel, conns):
        w = occupied_length_weight(channel)
        r = route(channel, conns, weight=w)
        r.validate()
        # Must equal the exact optimum.
        expected = route(channel, conns, weight=w, algorithm="exact")
        assert r.total_weight(w) == expected.total_weight(w)

    def test_auto_infeasible(self):
        ch = channel_from_breaks(6, [()])
        cs = ConnectionSet.from_spans([(1, 3), (2, 5)])
        with pytest.raises(RoutingInfeasibleError):
            route(ch, cs)

    def test_results_always_validated(self, channel, conns):
        for alg in ("dp", "dp_types", "exact", "lp"):
            r = route(channel, conns, algorithm=alg, max_segments=2)
            r.validate(2)

    def test_auto_many_tracks_few_types(self):
        # 14 tracks, 2 types: auto must not explode (typed DP path).
        breaks = [(4, 8)] * 7 + [(6,)] * 7
        ch = channel_from_breaks(12, breaks)
        cs = ConnectionSet.from_spans(
            [(1, 4)] * 5 + [(5, 8)] * 5 + [(9, 12)] * 4
        )
        r = route(ch, cs, max_segments=1)
        r.validate(1)

"""Tests for the Theorem-3 and Theorem-4 greedy routers."""

import pytest

from repro.core.channel import channel_from_breaks, identical_channel
from repro.core.connection import ConnectionSet
from repro.core.errors import ChannelError, RoutingInfeasibleError
from repro.core.greedy import (
    route_one_segment_greedy,
    route_two_segment_tracks_greedy,
)


class TestOneSegmentGreedy:
    def test_fig3_unambiguous_assignments(self, fig3):
        ch, cs = fig3
        r = route_one_segment_greedy(ch, cs)
        r.validate(max_segments=1)
        # The two printed assignments that survive the scan: c1 -> s21
        # (track 2), c2 -> s31 (track 3); 0-based tracks 1 and 2.
        assert r.as_dict()["c1"] == 1
        assert r.as_dict()["c2"] == 2

    def test_min_right_end_rule(self):
        # Connection fits segments ending at 4 (track1) and 9 (track0);
        # the rule picks the earlier-ending one.
        ch = channel_from_breaks(9, [(), (4,)])
        cs = ConnectionSet.from_spans([(1, 3)])
        r = route_one_segment_greedy(ch, cs)
        assert r.assignment == (1,)

    def test_tie_breaks_low_track(self):
        ch = channel_from_breaks(9, [(4,), (4,)])
        cs = ConnectionSet.from_spans([(1, 3)])
        r = route_one_segment_greedy(ch, cs)
        assert r.assignment == (0,)

    def test_occupied_segments_skipped(self):
        ch = channel_from_breaks(9, [(4,), (4,)])
        cs = ConnectionSet.from_spans([(1, 2), (3, 4)])
        r = route_one_segment_greedy(ch, cs)
        r.validate(max_segments=1)
        assert r.assignment[0] != r.assignment[1]

    def test_multi_segment_fit_not_allowed(self):
        ch = channel_from_breaks(9, [(4,)])
        cs = ConnectionSet.from_spans([(3, 6)])
        with pytest.raises(RoutingInfeasibleError):
            route_one_segment_greedy(ch, cs)

    def test_infeasible_when_all_occupied(self):
        ch = channel_from_breaks(9, [(4,)])
        cs = ConnectionSet.from_spans([(1, 2), (3, 4)])
        with pytest.raises(RoutingInfeasibleError):
            route_one_segment_greedy(ch, cs)

    def test_empty(self):
        ch = channel_from_breaks(9, [(4,)])
        assert route_one_segment_greedy(ch, ConnectionSet([])).assignment == ()

    def test_all_results_single_segment(self):
        ch = channel_from_breaks(12, [(3, 6, 9), (4, 8), ()])
        cs = ConnectionSet.from_spans([(1, 3), (2, 4), (5, 6), (7, 9), (10, 12)])
        r = route_one_segment_greedy(ch, cs)
        r.validate(max_segments=1)
        assert r.max_segments_used() == 1


class TestTwoSegmentGreedy:
    def test_rejects_three_segment_tracks(self):
        ch = channel_from_breaks(9, [(3, 6)])
        with pytest.raises(ChannelError):
            route_two_segment_tracks_greedy(ch, ConnectionSet.from_spans([(1, 2)]))

    def test_fig8_walkthrough(self):
        from repro.generators.paper_examples import fig8_channel, fig8_connections

        r = route_two_segment_tracks_greedy(fig8_channel(), fig8_connections())
        r.validate()
        # c1 -> t1; c2 pooled then flushed to t3; c3 tie (t2,t3) -> t2;
        # c4 -> t1's right segment.
        assert r.as_dict() == {"c1": 0, "c2": 2, "c3": 1, "c4": 0}

    def test_pool_overflow_is_infeasible(self):
        # Two whole-track connections, one track.
        ch = channel_from_breaks(9, [(4,)])
        cs = ConnectionSet.from_spans([(2, 6), (3, 7)])
        with pytest.raises(RoutingInfeasibleError):
            route_two_segment_tracks_greedy(ch, cs)

    def test_pool_flushed_at_end(self):
        ch = channel_from_breaks(9, [(4,), (4,)])
        cs = ConnectionSet.from_spans([(2, 6)])
        r = route_two_segment_tracks_greedy(ch, cs)
        r.validate()

    def test_pooled_connection_consumes_whole_track(self):
        ch = channel_from_breaks(9, [(4,), (4,)])
        # (2,6) pools; (5,9) and (1,3) fit single segments.
        cs = ConnectionSet.from_spans([(1, 3), (2, 6), (5, 9)])
        r = route_two_segment_tracks_greedy(ch, cs)
        r.validate()
        d = r.as_dict()
        assert d["c2"] not in (d["c1"], d["c3"])

    def test_single_segment_priority_preserved(self):
        # Matches the 1-segment greedy when everything fits one segment.
        ch = channel_from_breaks(9, [(4,), (6,)])
        cs = ConnectionSet.from_spans([(1, 3), (5, 9), (7, 9)])
        r = route_two_segment_tracks_greedy(ch, cs)
        r1 = route_one_segment_greedy(ch, cs)
        assert r.assignment == r1.assignment

    def test_unsegmented_tracks_allowed(self):
        ch = channel_from_breaks(9, [(), ()])
        cs = ConnectionSet.from_spans([(1, 5), (4, 9)])
        r = route_two_segment_tracks_greedy(ch, cs)
        r.validate()
        assert set(r.assignment) == {0, 1}

    def test_empty(self):
        ch = channel_from_breaks(9, [(4,)])
        assert (
            route_two_segment_tracks_greedy(ch, ConnectionSet([])).assignment
            == ()
        )


class TestCoveringIndexEquivalence:
    """The covering-index scan must reproduce the direct all-tracks scan
    of the Theorem-3 greedy exactly, ties and failures included."""

    @staticmethod
    def _reference_greedy(channel, connections):
        """The pre-geometry implementation: scan every track per
        connection, keep the smallest right end (ties -> lowest track)."""
        occupied = set()
        assignment = []
        for c in connections:
            best_track, best_end = -1, None
            for t in range(channel.n_tracks):
                track = channel.track(t)
                si = track.segment_index_at(c.left)
                _, right = track.segment_bounds[si]
                if right < c.right or (t, si) in occupied:
                    continue
                if best_end is None or right < best_end:
                    best_end, best_track = right, t
            if best_track < 0:
                return None
            occupied.add(
                (best_track, channel.track(best_track).segment_index_at(c.left))
            )
            assignment.append(best_track)
        return tuple(assignment)

    def test_matches_direct_scan_on_random_instances(self):
        import random as _random

        from repro.core.connection import Connection
        from repro.generators.random_instances import random_channel

        rng = _random.Random(42)
        feasible = infeasible = 0
        for trial in range(150):
            T = rng.randint(1, 8)
            N = rng.randint(6, 60)
            ch = random_channel(T, N, rng.uniform(1.5, 5.0), seed=20_000 + trial)
            conns = []
            for j in range(rng.randint(1, 12)):
                left = rng.randint(1, max(1, N - 1))
                right = rng.randint(left, min(N, left + rng.randint(0, 6)))
                conns.append(Connection(left, right, f"c{j}"))
            cs = ConnectionSet(conns)
            expected = self._reference_greedy(ch, cs)
            if expected is None:
                infeasible += 1
                with pytest.raises(RoutingInfeasibleError):
                    route_one_segment_greedy(ch, cs)
            else:
                feasible += 1
                assert route_one_segment_greedy(ch, cs).assignment == expected
        assert feasible > 20 and infeasible > 5

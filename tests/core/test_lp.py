"""Tests for the Section IV-C LP heuristic."""

import random

import pytest

from repro.core.channel import channel_from_breaks, staggered_channel
from repro.core.connection import ConnectionSet
from repro.core.dp import route_dp
from repro.core.errors import HeuristicFailure, RoutingInfeasibleError
from repro.core.lp import build_routing_lp, lp_relaxation_report, route_lp
from repro.generators.random_instances import random_channel, random_feasible_instance


class TestModel:
    def test_variable_count(self):
        ch = channel_from_breaks(6, [(3,), ()])
        cs = ConnectionSet.from_spans([(1, 3), (4, 6)])
        lp, keys = build_routing_lp(ch, cs)
        assert len(keys) == 4  # every (connection, track) pair feasible
        assert lp.n_variables == 4

    def test_k_limit_prunes_variables(self):
        ch = channel_from_breaks(6, [(3,), ()])
        cs = ConnectionSet.from_spans([(2, 5)])
        _, keys = build_routing_lp(ch, cs, max_segments=1)
        assert keys == [(0, 1)]  # only the unsegmented track

    def test_constraint_count(self):
        ch = channel_from_breaks(6, [(3,)])
        cs = ConnectionSet.from_spans([(1, 2), (2, 3)])
        lp, _ = build_routing_lp(ch, cs)
        # 2 per-connection rows + 1 shared-segment row.
        assert lp.n_constraints == 3


class TestRelaxationReport:
    def test_feasible_instance_routes_directly(self):
        ch = channel_from_breaks(9, [(3, 6), (5,)])
        cs = ConnectionSet.from_spans([(1, 3), (4, 6), (7, 9)])
        report = lp_relaxation_report(ch, cs)
        assert report.all_assigned
        assert report.m_connections == 3

    def test_infeasible_instance_objective_below_m(self):
        ch = channel_from_breaks(6, [()])
        cs = ConnectionSet.from_spans([(1, 3), (2, 5)])
        report = lp_relaxation_report(ch, cs)
        assert report.objective < 2 - 1e-6
        assert not report.routed_directly


class TestRouteLP:
    def test_routes_valid(self):
        ch = channel_from_breaks(9, [(3, 6), (5,)])
        cs = ConnectionSet.from_spans([(1, 3), (4, 6), (7, 9), (1, 5)])
        r = route_lp(ch, cs)
        r.validate()

    def test_respects_k(self):
        ch = channel_from_breaks(9, [(3, 6), ()])
        cs = ConnectionSet.from_spans([(1, 8)])
        r = route_lp(ch, cs, max_segments=1)
        r.validate(max_segments=1)
        assert r.assignment == (1,)

    def test_infeasibility_detected_via_bound(self):
        ch = channel_from_breaks(6, [()])
        cs = ConnectionSet.from_spans([(1, 3), (2, 5)])
        with pytest.raises(HeuristicFailure, match="proves"):
            route_lp(ch, cs)

    def test_empty(self):
        ch = channel_from_breaks(6, [()])
        assert route_lp(ch, ConnectionSet([])).assignment == ()

    def test_agreement_with_dp_on_random_feasible(self):
        rng = random.Random(41)
        for trial in range(12):
            ch = random_channel(4, 20, 5.0, seed=rng.getrandbits(32))
            cs = random_feasible_instance(
                ch, 8, seed=rng.getrandbits(32), max_segments=2
            )
            # DP confirms feasibility; the LP heuristic should route too
            # (by construction these are the benign instances the paper's
            # simulations found the LP to handle).
            route_dp(ch, cs, max_segments=2).validate(2)
            r = route_lp(ch, cs, max_segments=2)
            r.validate(2)

    def test_paper_scale_m60_t25(self):
        # One paper-scale instance routed through the relaxation.
        ch = staggered_channel(25, 80, 8)
        cs = random_feasible_instance(ch, 60, seed=123, mean_length=8.0)
        report = lp_relaxation_report(ch, cs)
        assert report.m_connections == 60
        assert report.n_tracks == 25
        assert report.all_assigned  # relaxation reaches M
        r = route_lp(ch, cs)
        r.validate()

"""Tests for the exact backtracking solvers."""

import itertools

import pytest

from repro.core.channel import channel_from_breaks
from repro.core.connection import ConnectionSet
from repro.core.errors import RoutingInfeasibleError
from repro.core.exact import count_routings, route_exact, route_exact_optimal
from repro.core.routing import Routing, occupied_length_weight
from tests.conftest import brute_force_routable


@pytest.fixture
def channel():
    return channel_from_breaks(8, [(4,), (2, 6), ()])


class TestRouteExact:
    def test_finds_valid_routing(self, channel):
        cs = ConnectionSet.from_spans([(1, 4), (2, 6), (5, 8)])
        route_exact(channel, cs).validate()

    def test_respects_k(self, channel):
        cs = ConnectionSet.from_spans([(1, 8)])
        r = route_exact(channel, cs, max_segments=1)
        r.validate(max_segments=1)
        assert r.assignment == (2,)  # only the unsegmented track

    def test_infeasible_raises(self, channel):
        cs = ConnectionSet.from_spans([(1, 8), (1, 8, ), (1, 8)])
        # three full-width connections need three tracks... each occupies
        # everything; actually feasible.  Use four.
        cs = ConnectionSet.from_spans([(1, 8)] * 4)
        with pytest.raises(RoutingInfeasibleError):
            route_exact(channel, cs)

    def test_agrees_with_brute_force(self):
        ch = channel_from_breaks(6, [(3,), (2, 4)])
        spans = [(1, 2), (2, 4), (3, 6), (5, 6), (1, 6)]
        for m in (2, 3):
            for combo in itertools.combinations_with_replacement(spans, m):
                cs = ConnectionSet.from_spans(list(combo))
                expected = brute_force_routable(ch, cs)
                try:
                    route_exact(ch, cs).validate()
                    got = True
                except RoutingInfeasibleError:
                    got = False
                assert got == expected, combo

    def test_agrees_with_brute_force_k2(self):
        ch = channel_from_breaks(6, [(2,), (2, 4)])
        spans = [(1, 3), (2, 5), (4, 6), (1, 6)]
        for combo in itertools.combinations_with_replacement(spans, 2):
            cs = ConnectionSet.from_spans(list(combo))
            expected = brute_force_routable(ch, cs, max_segments=2)
            try:
                route_exact(ch, cs, max_segments=2).validate(2)
                got = True
            except RoutingInfeasibleError:
                got = False
            assert got == expected, combo

    def test_node_limit(self, channel):
        cs = ConnectionSet.from_spans([(1, 2), (3, 4), (5, 6)])
        with pytest.raises(RoutingInfeasibleError, match="node limit"):
            route_exact(channel, cs, node_limit=1)

    def test_empty(self, channel):
        assert route_exact(channel, ConnectionSet([])).assignment == ()


class TestCountRoutings:
    def test_count_matches_enumeration(self):
        ch = channel_from_breaks(6, [(3,), (2, 4)])
        spans = [(1, 2), (2, 4), (3, 6), (5, 6)]
        for combo in itertools.combinations(spans, 2):
            cs = ConnectionSet.from_spans(list(combo))
            brute = sum(
                1
                for assign in itertools.product(range(2), repeat=2)
                if Routing(ch, cs, assign).is_valid()
            )
            assert count_routings(ch, cs) == brute, combo

    def test_zero_for_infeasible(self):
        ch = channel_from_breaks(6, [()])
        cs = ConnectionSet.from_spans([(1, 3), (2, 5)])
        assert count_routings(ch, cs) == 0

    def test_k_reduces_count(self):
        ch = channel_from_breaks(6, [(3,), (3,)])
        cs = ConnectionSet.from_spans([(2, 5)])
        assert count_routings(ch, cs) == 2
        assert count_routings(ch, cs, max_segments=1) == 0


class TestRouteExactOptimal:
    def test_minimizes_weight_vs_enumeration(self):
        ch = channel_from_breaks(8, [(4,), (2, 6), ()])
        w = occupied_length_weight(ch)
        spans_sets = [
            [(1, 3), (2, 5)],
            [(1, 2), (3, 4), (5, 8)],
            [(2, 6), (1, 4)],
        ]
        for spans in spans_sets:
            cs = ConnectionSet.from_spans(spans)
            best = None
            for assign in itertools.product(range(3), repeat=len(cs)):
                r = Routing(ch, cs, assign)
                if r.is_valid():
                    cost = r.total_weight(w)
                    best = cost if best is None else min(best, cost)
            got = route_exact_optimal(ch, cs, w)
            got.validate()
            assert got.total_weight(w) == best, spans

    def test_optimal_respects_k(self):
        ch = channel_from_breaks(8, [(4,), ()])
        w = occupied_length_weight(ch)
        cs = ConnectionSet.from_spans([(3, 6)])
        r = route_exact_optimal(ch, cs, w, max_segments=1)
        assert r.assignment == (1,)

    def test_infeasible_raises(self):
        ch = channel_from_breaks(8, [(4,)])
        w = occupied_length_weight(ch)
        cs = ConnectionSet.from_spans([(3, 6)])
        with pytest.raises(RoutingInfeasibleError):
            route_exact_optimal(ch, cs, w, max_segments=1)

    def test_no_feasible_track_at_all(self):
        ch = channel_from_breaks(8, [(2, 4, 6)])
        w = occupied_length_weight(ch)
        cs = ConnectionSet.from_spans([(1, 8)])
        with pytest.raises(RoutingInfeasibleError):
            route_exact_optimal(ch, cs, w, max_segments=2)

"""Shared fixtures and cross-algorithm helpers for the test suite."""

from __future__ import annotations

import itertools

import pytest

from repro.core.channel import (
    SegmentedChannel,
    Track,
    channel_from_breaks,
    fully_segmented_channel,
    identical_channel,
    uniform_channel,
    unsegmented_channel,
)
from repro.core.connection import Connection, ConnectionSet


@pytest.fixture
def fig3():
    """The reconstructed Fig. 3 instance: (channel, connections)."""
    from repro.generators.paper_examples import fig3_channel, fig3_connections

    return fig3_channel(), fig3_connections()


@pytest.fixture
def small_channel():
    """A 3-track mixed-segmentation channel over 12 columns."""
    return channel_from_breaks(12, [(4, 8), (6,), ()], name="small")


@pytest.fixture
def identical_small():
    return identical_channel(3, 12, (4, 8))


def all_small_instances(n_columns=6, n_tracks=2, breaks_options=None, max_m=3):
    """Enumerate small (channel, connections) instances for oracle tests.

    Yields a few hundred instances: every combination of per-track breaks
    from ``breaks_options`` and every multiset of up to ``max_m`` spans
    from a coarse span grid.
    """
    if breaks_options is None:
        breaks_options = [(), (3,), (2, 4)]
    spans = [
        (l, r)
        for l in range(1, n_columns + 1)
        for r in range(l, n_columns + 1)
    ]
    coarse = [s for s in spans if (s[0] + s[1]) % 2 == 0]  # thin the grid
    for track_breaks in itertools.product(breaks_options, repeat=n_tracks):
        channel = channel_from_breaks(n_columns, list(track_breaks))
        for m in range(1, max_m + 1):
            for combo in itertools.combinations_with_replacement(coarse, m):
                conns = ConnectionSet.from_spans(list(combo))
                yield channel, conns


def brute_force_routable(channel, connections, max_segments=None) -> bool:
    """Tiny independent oracle: try every assignment tuple directly
    against the Routing validator (exponential; only for tiny instances)."""
    from repro.core.routing import Routing

    M = len(connections)
    T = channel.n_tracks
    for assignment in itertools.product(range(T), repeat=M):
        r = Routing(channel, connections, assignment)
        if r.is_valid(max_segments):
            return True
    return False

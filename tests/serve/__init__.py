"""Tests for the repro.serve subsystem."""

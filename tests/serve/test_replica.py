"""Replica supervision: state machine, backoff, quarantine, faults.

The restart/quarantine state machine is driven directly (no processes)
so it tests deterministically; one test launches a real subprocess
replica end-to-end.  Crash/hang recovery under live traffic lives in
the chaos suite (``test_chaos_serve.py``).
"""

import asyncio
import sys
import time

import pytest

from repro.core.errors import ServeError
from repro.engine.resilience.faults import FaultPlan
from repro.engine.resilience.retry import RetryPolicy
from repro.serve.replica import (
    REPLICA_QUARANTINED,
    REPLICA_RESTARTING,
    REPLICA_STOPPED,
    REPLICA_UP,
    ReplicaSet,
    StaticReplicaSet,
)

pytestmark = pytest.mark.serve


# ----------------------------------------------------------------------
# StaticReplicaSet (the in-process stand-in the router tests use)
# ----------------------------------------------------------------------
def test_static_set_endpoints_and_down_marks():
    replica_set = StaticReplicaSet([("a", 1), ("b", 2)])
    assert replica_set.n_replicas == 2
    assert replica_set.endpoint(0) == ("a", 1)
    assert replica_set.live_indices() == [0, 1]

    replica_set.set_down(0)
    assert replica_set.endpoint(0) is None
    assert replica_set.live_indices() == [1]
    assert replica_set.counters()["0"]["state"] == REPLICA_STOPPED

    replica_set.set_endpoint(0, ("c", 3))  # "restart" clears the down mark
    assert replica_set.endpoint(0) == ("c", 3)
    assert [s.state for s in replica_set.status()] == [
        REPLICA_UP, REPLICA_UP,
    ]
    replica_set.note_request()  # interface no-op, never raises


def test_static_set_rejects_empty():
    with pytest.raises(ValueError):
        StaticReplicaSet([])


# ----------------------------------------------------------------------
# supervision state machine (no processes)
# ----------------------------------------------------------------------
def _bare_set(**kwargs):
    defaults = dict(
        restart_policy=RetryPolicy(
            max_attempts=2, base_delay=0.01, max_delay=0.02, jitter=0.0
        ),
        flap_window_s=60.0,
    )
    defaults.update(kwargs)
    return ReplicaSet(2, seed=3, **defaults)


def test_failure_schedules_backoff_restart():
    replica_set = _bare_set()
    replica = replica_set._replicas[0]
    before = time.monotonic()
    replica_set._on_failure(replica, "exit")
    assert replica.state == REPLICA_RESTARTING
    assert replica.restarts == 1 and replica.total_restarts == 1
    assert replica.port is None
    assert replica.restart_at >= before  # delayed, not immediate
    counters = replica_set.metrics.snapshot()["counters"]
    assert counters["serve.replica.failures"] == 1
    assert counters["serve.replica.restarts"] == 1


def test_flapping_replica_is_quarantined():
    replica_set = _bare_set()
    replica = replica_set._replicas[1]
    for _ in range(2):  # inside the restart budget
        replica_set._on_failure(replica, "exit")
        assert replica.state == REPLICA_RESTARTING
    replica_set._on_failure(replica, "exit")  # budget exhausted
    assert replica.state == REPLICA_QUARANTINED
    assert replica_set.endpoint(1) is None
    counters = replica_set.metrics.snapshot()["counters"]
    assert counters["serve.replica.quarantined"] == 1
    assert counters["serve.replica.failures"] == 3
    assert counters["serve.replica.restarts"] == 2  # quarantine != restart


def test_backoff_delays_are_deterministic_per_seed():
    first = _bare_set()
    second = _bare_set()
    for replica_set in (first, second):
        replica_set._on_failure(replica_set._replicas[0], "exit")
    assert first._replicas[0].restart_at - second._replicas[0].restart_at == (
        pytest.approx(0.0, abs=0.5)
    )


def test_note_request_fires_each_fault_exactly_once():
    plan = FaultPlan(kill_replica_after=3, stop_replica_after=5, seed=13)
    replica_set = _bare_set(fault_plan=plan)
    # No processes are running, so the signal is a no-op — but the
    # trigger bookkeeping must still fire exactly once per fault kind.
    for _ in range(2):
        replica_set.note_request()
    assert replica_set._fault_fired == set()
    replica_set.note_request()
    assert replica_set._fault_fired == {"kill"}
    for _ in range(10):
        replica_set.note_request()
    assert replica_set._fault_fired == {"kill", "stop"}


def test_replica_victim_is_seeded_and_in_range():
    plan = FaultPlan(kill_replica_after=1, seed=21)
    same = FaultPlan(kill_replica_after=1, seed=21)
    other = FaultPlan(kill_replica_after=1, seed=22)
    victims = [plan.replica_victim(5, "kill") for _ in range(4)]
    assert all(0 <= v < 5 for v in victims)
    assert len(set(victims)) == 1  # stable within a plan
    assert victims[0] == same.replica_victim(5, "kill")
    assert any(
        plan.replica_victim(n, "kill") != other.replica_victim(n, "kill")
        for n in (3, 5, 7, 11)
    )


def test_argv_forwards_every_serve_knob():
    replica_set = ReplicaSet(
        1, seed=9, jobs=2, timeout=1.5, max_batch=8, max_wait_ms=3.0,
        max_queue=32, rate=100.0, burst=10.0, drain_grace=1.0,
    )
    replica = replica_set._replicas[0]
    replica.port_file = "/tmp/pf.json"
    argv = replica_set._argv(replica)
    text = " ".join(argv)
    assert "-m repro serve" in text
    assert "--port 0" in text and "--http-port 0" in text
    assert "--port-file /tmp/pf.json" in text
    assert "--seed 9" in text and "--jobs 2" in text
    assert "--timeout 1.5" in text and "--rate 100.0" in text
    assert "--max-batch 8" in text and "--max-queue 32" in text


def test_replica_set_validation():
    with pytest.raises(ValueError):
        ReplicaSet(0)


# ----------------------------------------------------------------------
# one real subprocess replica, launched and stopped
# ----------------------------------------------------------------------
def test_replica_set_launches_and_stops_a_real_server():
    async def main():
        async with ReplicaSet(1, seed=7, heartbeat_interval=0.2) as replicas:
            endpoint = replicas.endpoint(0)
            assert endpoint is not None
            assert replicas.live_indices() == [0]
            status = replicas.status()[0]
            assert status.state == REPLICA_UP
            assert status.pid is not None and status.port == endpoint[1]
            # The child is a full RoutingServer: it answers a ping.
            assert await replicas._ping(replicas._replicas[0])
        assert replicas.endpoint(0) is None
        assert replicas.status()[0].state == REPLICA_STOPPED

    asyncio.run(main())


def test_partial_launch_failure_terminates_started_replicas():
    """One replica failing to launch must not orphan the ones that
    did: start() terminates them before the error propagates."""
    async def main():
        replicas = ReplicaSet(2, seed=7)
        real_argv = replicas._argv

        def argv(replica):
            if replica.index == 1:  # dies immediately during startup
                return [sys.executable, "-c", "import sys; sys.exit(3)"]
            return real_argv(replica)

        replicas._argv = argv
        with pytest.raises(ServeError):
            await replicas.start()
        survivor = replicas._replicas[0].process
        assert survivor is not None
        assert survivor.poll() is not None  # terminated, not orphaned
        assert all(
            r.state == REPLICA_STOPPED for r in replicas._replicas
        )
        assert replicas._workdir is None

    asyncio.run(main())

"""Micro-batcher: window formation, partitioning, shedding, drain."""

import asyncio
import time

import pytest

from repro.core.errors import AdmissionRejected, ServeError
from repro.engine import EngineConfig, RoutingEngine
from repro.engine.metrics import Metrics
from repro.serve.batcher import MicroBatcher, PendingRequest
from repro.serve.loadgen import build_corpus
from repro.serve.protocol import STATUS_SHED, RouteRequest


def _pending(entry, loop, **kwargs):
    channel, conns, k = entry
    request = RouteRequest(
        request_id=kwargs.pop("request_id", "r"),
        channel=channel, connections=conns, max_segments=k,
        **{k2: v for k2, v in kwargs.items()
           if k2 in ("weight", "algorithm")},
    )
    return PendingRequest(
        request=request, future=loop.create_future(),
        deadline_at=kwargs.get("deadline_at"),
    )


def _run(coro):
    return asyncio.run(coro)


def test_concurrent_submissions_share_one_batch():
    corpus = build_corpus(6, seed=11)

    async def main():
        engine = RoutingEngine(EngineConfig(seed=11))
        metrics = Metrics()
        batcher = MicroBatcher(
            engine, max_batch=16, max_wait=0.05, metrics=metrics
        )
        batcher.start()
        loop = asyncio.get_running_loop()
        pendings = [_pending(e, loop) for e in corpus]
        results = await asyncio.gather(*(
            batcher.submit(p) for p in pendings
        ))
        await batcher.close()
        snap = metrics.snapshot()
        return results, snap

    results, snap = _run(main())
    assert all(r.ok for r in results)
    # Six concurrent submissions and a 50ms window: far fewer batches
    # than requests (normally exactly 1, but the first window can close
    # with only the earliest arrivals on a slow machine).
    assert snap["counters"]["serve.batches"] < len(results)
    assert snap["histograms"]["serve.batch_size"]["max"] > 1


def test_max_batch_bounds_window_size():
    corpus = build_corpus(5, seed=12)

    async def main():
        engine = RoutingEngine(EngineConfig(seed=12))
        metrics = Metrics()
        batcher = MicroBatcher(
            engine, max_batch=2, max_wait=10.0, metrics=metrics
        )
        batcher.start()
        loop = asyncio.get_running_loop()
        results = await asyncio.gather(*(
            batcher.submit(_pending(e, loop)) for e in corpus
        ))
        await batcher.close()
        return results, metrics.snapshot()

    results, snap = _run(main())
    assert all(r.ok for r in results)
    assert snap["histograms"]["serve.batch_size"]["max"] <= 2
    assert snap["counters"]["serve.batches"] >= 3


def test_expired_deadline_is_shed_not_routed():
    corpus = build_corpus(2, seed=13)

    async def main():
        engine = RoutingEngine(EngineConfig(seed=13))
        batcher = MicroBatcher(engine, max_batch=4, max_wait=0.01)
        batcher.start()
        loop = asyncio.get_running_loop()
        dead = _pending(corpus[0], loop)
        dead.deadline_at = time.monotonic() - 1.0  # already expired
        live = _pending(corpus[1], loop)
        shed_error = None
        try:
            await batcher.submit(dead)
        except AdmissionRejected as exc:
            shed_error = exc
        result = await batcher.submit(live)
        await batcher.close()
        return shed_error, result, engine.stats()

    shed_error, result, stats = _run(main())
    assert shed_error is not None and shed_error.status == STATUS_SHED
    assert result.ok
    # Only the live request reached the engine.
    assert stats["counters"]["requests"] == 1


def test_mixed_parameters_partition_into_groups():
    corpus = build_corpus(4, seed=14)

    async def main():
        engine = RoutingEngine(EngineConfig(seed=14))
        batcher = MicroBatcher(engine, max_batch=8, max_wait=0.05)
        batcher.start()
        loop = asyncio.get_running_loop()
        pendings = [
            _pending(corpus[0], loop),
            _pending(corpus[1], loop, weight="length"),
            _pending(corpus[2], loop, algorithm="greedy1"),
            _pending(corpus[3], loop, weight="length"),
        ]
        results = await asyncio.gather(*(
            batcher.submit(p) for p in pendings
        ))
        await batcher.close()
        return results

    results = _run(main())
    assert all(r.ok for r in results)
    assert results[2].algorithm == "greedy1"


def test_close_flushes_queued_work():
    corpus = build_corpus(3, seed=15)

    async def main():
        engine = RoutingEngine(EngineConfig(seed=15))
        batcher = MicroBatcher(engine, max_batch=8, max_wait=5.0)
        batcher.start()
        loop = asyncio.get_running_loop()
        pendings = [_pending(e, loop) for e in corpus]
        submits = [
            asyncio.ensure_future(batcher.submit(p)) for p in pendings
        ]
        await asyncio.sleep(0)  # let submissions enqueue
        await batcher.close()   # must flush, not drop
        return await asyncio.gather(*submits)

    results = _run(main())
    assert all(r.ok for r in results)


def test_submit_after_close_raises():
    corpus = build_corpus(1, seed=16)

    async def main():
        engine = RoutingEngine(EngineConfig(seed=16))
        batcher = MicroBatcher(engine)
        batcher.start()
        await batcher.close()
        with pytest.raises(ServeError):
            await batcher.submit(
                _pending(corpus[0], asyncio.get_running_loop())
            )

    _run(main())


def test_service_observer_fed_per_request_times():
    corpus = build_corpus(2, seed=17)
    observed = []

    async def main():
        engine = RoutingEngine(EngineConfig(seed=17))
        batcher = MicroBatcher(
            engine, max_wait=0.02, service_observer=observed.append
        )
        batcher.start()
        loop = asyncio.get_running_loop()
        await asyncio.gather(*(
            batcher.submit(_pending(e, loop)) for e in corpus
        ))
        await batcher.close()

    _run(main())
    assert observed and all(t >= 0 for t in observed)


@pytest.mark.parametrize("kwargs", [
    {"max_batch": 0},
    {"max_wait": -0.1},
])
def test_constructor_validation(kwargs):
    engine = RoutingEngine()
    with pytest.raises(ValueError):
        MicroBatcher(engine, **kwargs)

"""Wire protocol: encode/decode, request building/parsing, responses."""

import json

import pytest

from repro.core.errors import ProtocolError
from repro.engine.engine import BatchResult
from repro.io.text_format import loads_instance
from repro.serve.protocol import (
    CAPABILITIES,
    PROTOCOL_VERSION,
    STATUS_ERROR,
    STATUS_OK,
    STATUS_SHED,
    SUPPORTED_VERSIONS,
    decode,
    encode,
    failure_response,
    hello_request,
    hello_response,
    negotiated_wire,
    ok_response,
    parse_route_request,
    route_request,
)
from repro.core.channel import uniform_channel
from repro.core.connection import ConnectionSet


@pytest.fixture()
def instance():
    channel = uniform_channel(n_tracks=4, n_columns=16, segment_length=4)
    conns = ConnectionSet.from_spans([(1, 3), (2, 7), (5, 12), (9, 16)])
    return channel, conns


def test_encode_is_one_json_line():
    wire = encode({"v": 1, "id": "r1", "op": "ping"})
    assert wire.endswith(b"\n")
    assert wire.count(b"\n") == 1
    assert json.loads(wire) == {"v": 1, "id": "r1", "op": "ping"}


def test_decode_roundtrip():
    message = {"v": PROTOCOL_VERSION, "id": "r1", "op": "ping"}
    assert decode(encode(message)) == message


@pytest.mark.parametrize("line", [
    b"\xff\xfe",                      # not UTF-8
    b"not json\n",                    # not JSON
    b"[1, 2]\n",                      # not an object
    b'{"id": "r1"}\n',                # missing version
    b'{"v": 99, "id": "r1"}\n',       # wrong version
    b'{"v": 1, "op": "explode"}\n',   # unknown op
])
def test_decode_rejects_bad_lines(line):
    with pytest.raises(ProtocolError):
        decode(line)


def test_route_request_roundtrip(instance):
    channel, conns = instance
    message = decode(encode(route_request(
        "r7", channel, conns, max_segments=2, weight="length",
        deadline_ms=250.0, trace_id="abc123", trace_parent="cl0",
    )))
    request = parse_route_request(message)
    assert request.request_id == "r7"
    assert request.max_segments == 2
    assert request.weight == "length"
    assert request.deadline_ms == 250.0
    assert request.trace_id == "abc123"
    assert request.trace_parent == "cl0"
    # The instance survives the wire byte-for-byte.
    assert request.channel == channel
    assert list(request.connections) == list(conns)


def test_route_request_minimal_defaults(instance):
    channel, conns = instance
    request = parse_route_request(decode(encode(
        route_request("r1", channel, conns)
    )))
    assert request.max_segments is None
    assert request.weight is None
    assert request.algorithm == "auto"
    assert request.deadline_ms is None
    assert request.trace_id == ""


@pytest.mark.parametrize("mutate", [
    lambda m: m.pop("id"),
    lambda m: m.update(id=7),
    lambda m: m.pop("sch"),
    lambda m: m.update(sch="garbage"),
    lambda m: m.update(k="two"),
    lambda m: m.update(weight="area"),
    lambda m: m.update(deadline_ms=-5),
    lambda m: m.update(trace="not-an-object"),
])
def test_parse_route_request_rejects_bad_fields(instance, mutate):
    channel, conns = instance
    message = route_request("r1", channel, conns)
    mutate(message)
    with pytest.raises(ProtocolError):
        parse_route_request(message)


def test_ok_response_success(instance):
    channel, conns = instance
    from repro.core.api import route

    routing = route(channel, conns, max_segments=2)
    result = BatchResult(
        index=0, channel=channel, connections=conns, routing=routing,
        algorithm="greedy1", duration=0.01, cache_hit=True, trace_id="t1",
    )
    response = ok_response("r1", result)
    assert response["status"] == STATUS_OK
    assert response["assignment"] == list(routing.assignment)
    assert response["cache_hit"] is True
    assert response["trace_id"] == "t1"


def test_ok_response_engine_error(instance):
    channel, conns = instance
    result = BatchResult(
        index=0, channel=channel, connections=conns, routing=None,
        error_type="RoutingInfeasibleError", error="no dice", timed_out=False,
    )
    response = ok_response("r1", result)
    assert response["status"] == STATUS_ERROR
    assert response["error_type"] == "RoutingInfeasibleError"
    assert "assignment" not in response


def test_failure_response_shape():
    response = failure_response("r9", STATUS_SHED, "AdmissionRejected", "why")
    assert response == {
        "v": PROTOCOL_VERSION, "id": "r9", "status": STATUS_SHED,
        "error_type": "AdmissionRejected", "error": "why",
    }


def test_sch_payload_is_loadable_text(instance):
    channel, conns = instance
    message = route_request("r1", channel, conns)
    loaded_channel, loaded_conns = loads_instance(message["sch"])
    assert loaded_channel == channel
    assert list(loaded_conns) == list(conns)


def test_version_rejection_names_supported_versions_and_caps():
    """A peer on an unknown version is told exactly what this side
    speaks, so mismatched deployments are debuggable from one log line."""
    with pytest.raises(ProtocolError) as excinfo:
        decode(b'{"v": 99, "id": "r1"}\n')
    text = str(excinfo.value)
    for version in SUPPORTED_VERSIONS:
        assert str(version) in text
    for cap in CAPABILITIES:
        assert cap in text


def test_hello_roundtrip_negotiates_v2():
    """hello request/response carry versions + caps; both-v2 peers
    negotiate the binary framing."""
    request = decode(encode(hello_request("hello")))
    assert request["op"] == "hello"
    assert list(SUPPORTED_VERSIONS) == request["versions"]
    assert list(CAPABILITIES) == request["caps"]
    response = hello_response("hello", request)
    assert response["status"] == STATUS_OK
    assert response["caps"] == list(CAPABILITIES)
    assert response["versions"] == list(SUPPORTED_VERSIONS)
    assert response["wire"] == "v2"
    assert negotiated_wire(request) == "v2"


@pytest.mark.parametrize("peer", [
    {"v": 1, "op": "hello"},                                  # bare v1 peer
    {"v": 1, "op": "hello", "versions": [1], "caps": []},     # explicit v1
    {"v": 2, "op": "hello", "versions": [2], "caps": []},     # v2, no binary
])
def test_negotiated_wire_falls_back_to_v1(peer):
    assert negotiated_wire(peer) == "v1"

"""Wire v2 binary framing: codec round trips, negotiation, parity.

The contract under test: binary framing is a pure transport
optimization.  A v2 conversation must produce byte-for-byte the same
routing answers as NDJSON v1 and as the offline engine, v1-only
clients must keep working against a v2 server unmodified, and the
``hello`` handshake must gate who speaks binary.
"""

import asyncio

import pytest

from repro.engine import EngineConfig, RoutingEngine
from repro.io.results import result_stream_digest
from repro.serve import (
    CAP_WIRE_V1,
    CAP_WIRE_V2,
    AsyncRoutingClient,
    RoutingClient,
    RoutingServer,
    ServeConfig,
    STATUS_OK,
)
from repro.io.results import digest_records, result_record
from repro.serve.loadgen import build_corpus
from repro.serve.protocol import ok_response, route_request
from repro.serve.wire import (
    HEADER_SIZE,
    WireCodec,
    decode_ok_frame,
    decode_route_frame,
)

pytestmark = pytest.mark.serve


def _config(**overrides):
    defaults = dict(port=0, http_port=0, max_wait_ms=2.0, drain_grace=5.0)
    defaults.update(overrides)
    return ServeConfig(**defaults)


def _served_digest(results):
    return digest_records(
        result_record(i, r.ok, r.assignment, r.error_type)
        for i, r in enumerate(results)
    )


def _offline_digest(corpus, seed):
    engine = RoutingEngine(EngineConfig(seed=seed))
    offline = engine.route_many(
        [(c, s) for c, s, _ in corpus],
        max_segments=[k for _, _, k in corpus],
    )
    return result_stream_digest(offline)


# ----------------------------------------------------------------------
# codec round trips (no server)
# ----------------------------------------------------------------------
def test_route_frame_round_trip_matches_json_parse():
    """A packed route frame decodes to the same instance as the JSON."""
    corpus = build_corpus(8, seed=3)
    codec = WireCodec()
    for i, (channel, conns, k) in enumerate(corpus):
        frame = codec.encode_route(
            f"q{i}", channel, conns, max_segments=k,
            weight="length", algorithm="dp", deadline_ms=250.0,
        )
        request = decode_route_frame(frame[HEADER_SIZE:])
        assert request.request_id == f"q{i}"
        assert request.max_segments == k
        assert request.weight == "length"
        assert request.algorithm == "dp"
        assert request.deadline_ms == 250.0
        assert request.channel.n_columns == channel.n_columns
        assert request.channel.n_tracks == channel.n_tracks
        assert [t.breaks for t in request.channel] == [
            t.breaks for t in channel
        ]
        assert [(c.left, c.right, c.name) for c in request.connections] == [
            (c.left, c.right, c.name) for c in conns
        ]


def test_route_frame_defaults_round_trip():
    """Optional fields absent: flags say so and decode restores them."""
    channel, conns, _ = build_corpus(1, seed=5)[0]
    codec = WireCodec()
    frame = codec.encode_route("q1", channel, conns)
    request = decode_route_frame(frame[HEADER_SIZE:])
    assert request.max_segments is None
    assert request.weight is None
    assert request.algorithm == "auto"
    assert request.deadline_ms is None
    assert request.trace_id == ""


def test_ok_frame_round_trip_matches_response_dict():
    """encode_ok -> decode_ok_frame preserves every response field."""

    class _Routing:
        assignment = [0, 2, 1]

    class _Result:
        routing = _Routing()
        algorithm = "dp"
        duration = 0.0042
        cache_hit = True
        fallbacks = 1
        trace_id = "ab12"

    message = ok_response("q9", _Result())
    codec = WireCodec()
    decoded = decode_ok_frame(bytes(codec.encode_ok(message))[HEADER_SIZE:])
    assert decoded["id"] == "q9"
    assert decoded["status"] == STATUS_OK
    assert decoded["assignment"] == [0, 2, 1]
    assert decoded["algorithm"] == "dp"
    assert decoded["cache_hit"] is True
    assert decoded["fallbacks"] == 1
    assert decoded["trace_id"] == "ab12"
    assert decoded["duration_ms"] == pytest.approx(4.2, abs=0.01)


def test_binary_frames_are_smaller_than_ndjson():
    """The point of the packing: fewer bytes per message on the wire."""
    channel, conns, k = build_corpus(1, seed=11)[0]
    codec = WireCodec()
    packed = codec.encode_route("q1", channel, conns, max_segments=k)
    line = codec.encode_line(
        route_request("q1", channel, conns, max_segments=k)
    )
    assert len(packed) < len(line)


# ----------------------------------------------------------------------
# negotiation
# ----------------------------------------------------------------------
def test_hello_negotiates_binary_and_route_ids_start_at_q1():
    """Auto clients end up on v2; the hello probe must not burn q1."""
    corpus = build_corpus(4, seed=13)

    async def main():
        server = RoutingServer(_config(seed=13))
        async with server:
            async with AsyncRoutingClient(
                "127.0.0.1", server.port, timeout=30
            ) as client:
                results = await client.route_many(
                    [(c, s) for c, s, _ in corpus],
                    max_segments=[k for _, _, k in corpus],
                )
                return client.negotiated_wire, client.wire_stats(), results

    negotiated, stats, results = asyncio.run(main())
    assert negotiated == "v2"
    assert stats["negotiated"] == "v2"
    assert stats["frames_out"]["v2"] == len(corpus)
    assert all(r.ok for r in results)


def test_hello_response_carries_capability_set():
    """The handshake advertises versions + capabilities explicitly."""

    async def main():
        server = RoutingServer(_config(seed=1))
        async with server:
            async with AsyncRoutingClient(
                "127.0.0.1", server.port, timeout=30, wire="v1"
            ) as client:
                from repro.serve.protocol import hello_request

                return await client.call(hello_request("hello"))

    response = asyncio.run(main())
    assert response["status"] == STATUS_OK
    assert 2 in response["versions"]
    assert CAP_WIRE_V1 in response["caps"]
    assert CAP_WIRE_V2 in response["caps"]
    assert response["wire"] == "v2"


def test_wire_v1_client_skips_handshake_and_works_unmodified():
    """Back-compat: a v1-only client never sends hello nor binary."""
    corpus = build_corpus(4, seed=17)

    async def main():
        server = RoutingServer(_config(seed=17))
        async with server:
            async with AsyncRoutingClient(
                "127.0.0.1", server.port, timeout=30, wire="v1"
            ) as client:
                results = await client.route_many(
                    [(c, s) for c, s, _ in corpus],
                    max_segments=[k for _, _, k in corpus],
                )
                negotiated = client.negotiated_wire
                stats = client.wire_stats()
            async with AsyncRoutingClient(
                "127.0.0.1", server.port, timeout=30
            ) as auto_client:
                auto = await auto_client.route_many(
                    [(c, s) for c, s, _ in corpus],
                    max_segments=[k for _, _, k in corpus],
                )
            return negotiated, stats, results, auto

    negotiated, stats, results, auto = asyncio.run(main())
    assert negotiated == "v1"
    assert stats["frames_out"]["v2"] == 0
    assert all(r.ok for r in results)
    # Both framings answer identically on the same server.
    assert _served_digest(results) == _served_digest(auto)


# ----------------------------------------------------------------------
# end-to-end parity
# ----------------------------------------------------------------------
def test_binary_server_digest_identical_to_offline_and_ndjson():
    """Acceptance: live v2 digest == live v1 digest == offline digest."""
    corpus = build_corpus(24, seed=23)
    seed = 23

    async def run(wire):
        server = RoutingServer(_config(seed=seed, max_batch=16))
        async with server:
            async with AsyncRoutingClient(
                "127.0.0.1", server.port, timeout=60, wire=wire
            ) as client:
                results = await client.route_many(
                    [(c, s) for c, s, _ in corpus],
                    max_segments=[k for _, _, k in corpus],
                )
                assert client.negotiated_wire == wire
                return results

    v2 = asyncio.run(run("v2"))
    v1 = asyncio.run(run("v1"))
    offline = _offline_digest(corpus, seed)
    assert _served_digest(v2) == offline
    assert _served_digest(v1) == offline


def test_sync_client_binary_parity():
    """The blocking client negotiates v2 and matches offline."""
    corpus = build_corpus(6, seed=29)
    seed = 29

    async def main():
        server = RoutingServer(_config(seed=seed))
        async with server:
            loop = asyncio.get_running_loop()

            def drive():
                with RoutingClient(
                    "127.0.0.1", server.port, timeout=30
                ) as client:
                    results = [
                        client.route(c, s, max_segments=k)
                        for c, s, k in corpus
                    ]
                    return client.negotiated_wire, results

            return await loop.run_in_executor(None, drive)

    negotiated, results = asyncio.run(main())
    assert negotiated == "v2"
    assert _served_digest(results) == _offline_digest(corpus, seed)


def test_server_counts_binary_requests_and_fastpath_hits():
    """Metrics: v2 frames counted; repeats answered on the fast path."""
    corpus = build_corpus(4, seed=31)

    async def main():
        server = RoutingServer(_config(seed=31))
        async with server:
            async with AsyncRoutingClient(
                "127.0.0.1", server.port, timeout=30
            ) as client:
                first = await client.route_many(
                    [(c, s) for c, s, _ in corpus],
                    max_segments=[k for _, _, k in corpus],
                )
                second = await client.route_many(
                    [(c, s) for c, s, _ in corpus],
                    max_segments=[k for _, _, k in corpus],
                )
                stats = await client.stats()
                return first, second, stats

    first, second, stats = asyncio.run(main())
    assert all(r.ok for r in first) and all(r.ok for r in second)
    assert _served_digest(first) == _served_digest(second)
    counters = stats["counters"]
    assert counters["serve.wire_v2_requests"] == 2 * len(corpus)
    # The whole second pass is canonical-cache hits answered inline.
    assert counters["serve.cache_fastpath"] >= len(corpus)


# ----------------------------------------------------------------------
# decode-cache byte bound
# ----------------------------------------------------------------------
class TestDecodeCacheByteBound:
    def _route_body(self, channel, conns, k):
        codec = WireCodec()
        frame = codec.encode_route("q1", channel, conns, max_segments=k)
        return frame[HEADER_SIZE:]

    def test_cache_bounded_by_total_payload_bytes(self):
        """Regression: the decode memo is bounded by cached payload
        *bytes*, not entry count — the old ``lru_cache(256)`` could pin
        256 near-MAX_FRAME_BYTES payloads (~4 GiB)."""
        from repro.serve.wire import _DecodeCache

        cache = _DecodeCache(max_bytes=1000)
        for i in range(50):
            payload = bytes([i]) * 100  # 100 bytes each, 10 fit
            cache.put(payload, (i,))
        stats = cache.stats()
        assert stats["bytes"] <= 1000
        assert stats["entries"] == 10
        # LRU: the most recent 10 survive, the oldest were evicted.
        assert cache.get(bytes([49]) * 100) == (49,)
        assert cache.get(bytes([0]) * 100) is None

    def test_oversized_payload_never_cached(self):
        from repro.serve.wire import _DecodeCache

        cache = _DecodeCache(max_bytes=100)
        cache.put(b"x" * 101, ("giant",))
        assert cache.stats()["entries"] == 0

    def test_repeat_decode_hits_shared_cache(self):
        from repro.serve.wire import _decode_cache

        corpus = build_corpus(2, seed=9)
        channel, conns, k = corpus[0]
        request = decode_route_frame(self._route_body(channel, conns, k))
        before = _decode_cache.stats()
        again = decode_route_frame(self._route_body(channel, conns, k))
        after = _decode_cache.stats()
        assert after["hits"] == before["hits"] + 1
        # Memoized: the identical payload returns the same objects.
        assert again.channel is request.channel
        assert again.connections is request.connections

    def test_wire_stats_expose_decode_cache_bound(self):
        from repro.serve.wire import DECODE_CACHE_BYTES, WireStats

        snap = WireStats().snapshot()
        assert snap["decode_cache"]["max_bytes"] == DECODE_CACHE_BYTES
        assert snap["decode_cache"]["bytes"] <= DECODE_CACHE_BYTES

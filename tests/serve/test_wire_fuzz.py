"""Malformed-frame fuzzing: garbled input must never surface as ``ok``.

Raw-socket tests against a live server: truncated length prefixes,
oversized declared lengths, garbage frame bodies, and v1/v2 interleave
on a single connection.  The invariants:

* a garbled body gets a typed ``ProtocolError`` response and the
  connection stays usable (the frame boundary was still valid);
* an unframeable length prefix gets a typed error and the connection
  is *closed* (the stream position can no longer be trusted);
* nothing garbled is ever answered with ``status: "ok"``.
"""

import asyncio
import json
import random
import struct

import pytest

from repro.serve import MAX_FRAME_BYTES, RoutingServer, ServeConfig
from repro.serve.loadgen import build_corpus
from repro.serve.wire import (
    FRAME_JSON,
    FRAME_ROUTE,
    HEADER_SIZE,
    MAGIC,
    WireCodec,
    decode_ok_frame,
    decode_route_frame,
    read_wire_message,
)
from repro.core.errors import ProtocolError, ReproError

pytestmark = pytest.mark.serve

_HEADER = struct.Struct(">BBI")


def _frame(ftype: int, body: bytes) -> bytes:
    return _HEADER.pack(MAGIC, ftype, len(body)) + body


async def _connect(port):
    return await asyncio.open_connection("127.0.0.1", port)


async def _read_message(reader, timeout=10.0):
    """One response, whichever framing the server answered in.

    Binary-framed requests are answered with binary frames (FRAME_JSON
    for errors, FRAME_OK for routes); NDJSON requests with lines.
    """
    item = await asyncio.wait_for(read_wire_message(reader), timeout)
    assert item is not None, "server closed instead of answering"
    wire, payload = item
    if wire == "v1":
        return json.loads(payload)
    ftype, body = payload
    if ftype == FRAME_JSON:
        return json.loads(body)
    return decode_ok_frame(body)


def _run(coro):
    return asyncio.run(coro)


def _config(**overrides):
    defaults = dict(port=0, http_port=0, max_wait_ms=2.0, drain_grace=5.0)
    defaults.update(overrides)
    return ServeConfig(**defaults)


async def _ping_ok(reader, writer):
    """The connection is still alive and sane after whatever preceded."""
    writer.write(json.dumps(
        {"v": 1, "id": "alive", "op": "ping"}
    ).encode() + b"\n")
    await writer.drain()
    response = await _read_message(reader)
    assert response["id"] == "alive"
    assert response["status"] == "ok"


def test_truncated_length_prefix_closes_cleanly():
    """MAGIC + a partial header then EOF: no response, no crash."""

    async def main():
        server = RoutingServer(_config(seed=1))
        async with server:
            reader, writer = await _connect(server.port)
            writer.write(bytes([MAGIC, FRAME_ROUTE, 0x00]))  # header cut
            await writer.drain()
            writer.close()
            await writer.wait_closed()
            # The server must survive it and keep serving others.
            reader2, writer2 = await _connect(server.port)
            await _ping_ok(reader2, writer2)
            writer2.close()

    _run(main())


def test_truncated_body_closes_cleanly():
    """A frame whose declared body never fully arrives: clean teardown."""

    async def main():
        server = RoutingServer(_config(seed=1))
        async with server:
            reader, writer = await _connect(server.port)
            writer.write(_HEADER.pack(MAGIC, FRAME_ROUTE, 4096) + b"\x01\x02")
            await writer.drain()
            writer.close()
            await writer.wait_closed()
            reader2, writer2 = await _connect(server.port)
            await _ping_ok(reader2, writer2)
            writer2.close()

    _run(main())


def test_oversized_declared_length_typed_error_then_close():
    """A length beyond MAX_FRAME_BYTES: typed error, connection closed."""

    async def main():
        server = RoutingServer(_config(seed=1))
        async with server:
            reader, writer = await _connect(server.port)
            writer.write(_HEADER.pack(MAGIC, FRAME_ROUTE, MAX_FRAME_BYTES + 1))
            await writer.drain()
            response = await _read_message(reader)
            assert response["status"] == "error"
            assert response["error_type"] == "ProtocolError"
            # The stream is unframeable: the server must hang up.
            assert await asyncio.wait_for(reader.read(), 10.0) == b""
            writer.close()

    _run(main())


def test_unknown_frame_type_typed_error_connection_survives():
    """An unknown frame type is an error; the boundary was still valid."""

    async def main():
        server = RoutingServer(_config(seed=1))
        async with server:
            reader, writer = await _connect(server.port)
            writer.write(_frame(0x7F, b"whatever"))
            await writer.drain()
            response = await _read_message(reader)
            assert response["status"] == "error"
            assert response["error_type"] == "ProtocolError"
            await _ping_ok(reader, writer)
            writer.close()

    _run(main())


def test_garbage_route_bodies_never_ok():
    """Seeded random bodies in valid FRAME_ROUTE frames: all rejected.

    Bodies that happen to decode locally into a valid request are
    skipped (they are not garbled, just improbable); every body that
    fails local decode must come back as a typed error — never ``ok``,
    and never a dropped connection.
    """
    rng = random.Random(0xB2)
    bodies = [
        bytes(rng.getrandbits(8) for _ in range(rng.randrange(0, 200)))
        for _ in range(40)
    ]
    garbled = []
    for body in bodies:
        try:
            decode_route_frame(body)
        except (ProtocolError, ReproError):
            garbled.append(body)
    assert garbled, "fuzz corpus produced no garbled bodies"

    async def main():
        server = RoutingServer(_config(seed=1))
        async with server:
            reader, writer = await _connect(server.port)
            for body in garbled:
                writer.write(_frame(FRAME_ROUTE, body))
                await writer.drain()
                response = await _read_message(reader)
                assert response["status"] == "error", response
                assert response["error_type"] == "ProtocolError"
            # After the whole barrage the connection still works.
            await _ping_ok(reader, writer)
            writer.close()

    _run(main())


def test_mutated_valid_frames_never_ok_unless_still_parseable():
    """Bit-flipped real frames: the server may only say ``ok`` to
    bodies that still decode into a valid request."""
    channel, conns, k = build_corpus(1, seed=9)[0]
    codec = WireCodec()
    original = bytes(codec.encode_route("m0", channel, conns, max_segments=k))
    body = original[HEADER_SIZE:]
    rng = random.Random(42)
    mutants = []
    for _ in range(30):
        mutated = bytearray(body)
        for _ in range(rng.randrange(1, 4)):
            mutated[rng.randrange(len(mutated))] = rng.getrandbits(8)
        mutants.append(bytes(mutated))

    expectations = []
    for mutated in mutants:
        try:
            decode_route_frame(mutated)
            expectations.append((mutated, True))
        except (ProtocolError, ReproError):
            expectations.append((mutated, False))

    async def main():
        server = RoutingServer(_config(seed=9))
        async with server:
            reader, writer = await _connect(server.port)
            for mutated, parseable in expectations:
                writer.write(_frame(FRAME_ROUTE, mutated))
                await writer.drain()
                response = await _read_message(reader)
                if not parseable:
                    assert response["status"] == "error", response
                    assert response["error_type"] == "ProtocolError"
                # Parseable mutants are legitimate (different) requests;
                # any status is fine as long as the server answered in
                # protocol and the connection survives.
            await _ping_ok(reader, writer)
            writer.close()

    _run(main())


def test_garbage_json_frame_bodies_never_ok():
    """FRAME_JSON with non-JSON bytes: typed error, not ``ok``."""
    rng = random.Random(7)
    bodies = [b"", b"\x00\x01", b"not json", b"[1,2,3]", b'"str"',
              bytes(rng.getrandbits(8) for _ in range(64))]

    async def main():
        server = RoutingServer(_config(seed=1))
        async with server:
            reader, writer = await _connect(server.port)
            for body in bodies:
                writer.write(_frame(FRAME_JSON, body))
                await writer.drain()
                response = await _read_message(reader)
                assert response["status"] == "error", (body, response)
            await _ping_ok(reader, writer)
            writer.close()

    _run(main())


def test_v1_v2_interleave_on_one_connection():
    """JSON lines and binary frames alternate freely on one socket."""
    channel, conns, k = build_corpus(1, seed=21)[0]
    codec = WireCodec()

    async def main():
        server = RoutingServer(_config(seed=21))
        async with server:
            reader, writer = await _connect(server.port)
            # 1) plain v1 ping line
            writer.write(json.dumps(
                {"v": 1, "id": "a", "op": "ping"}
            ).encode() + b"\n")
            # 2) binary route frame
            writer.write(bytes(codec.encode_route(
                "b", channel, conns, max_segments=k,
            )))
            # 3) garbled binary frame
            writer.write(_frame(FRAME_ROUTE, b"\xff\xff\xff"))
            # 4) another v1 line (route via JSON)
            from repro.serve.protocol import route_request

            writer.write(json.dumps(
                route_request("d", channel, conns, max_segments=k)
            ).encode() + b"\n")
            await writer.drain()

            by_id = {}
            while len(by_id) < 4:
                first = await asyncio.wait_for(
                    reader.readexactly(1), 15.0
                )
                if first == bytes([MAGIC]):
                    ftype, length = struct.unpack(
                        ">BI", await reader.readexactly(5)
                    )
                    from repro.serve.wire import decode_ok_frame

                    frame_body = await reader.readexactly(length)
                    if ftype == FRAME_JSON:
                        message = json.loads(frame_body)
                    else:
                        message = decode_ok_frame(frame_body)
                else:
                    line = first + await reader.readline()
                    message = json.loads(line)
                by_id[message.get("id")] = message
            writer.close()
            return by_id

    by_id = _run(main())
    assert by_id["a"]["status"] == "ok"
    assert by_id["b"]["status"] == "ok"
    assert by_id["d"]["status"] == "ok"
    # The garbled frame answered with a typed, id-less error.
    assert by_id[None]["status"] == "error"
    assert by_id[None]["error_type"] == "ProtocolError"
    # Binary and JSON answers for the same instance agree.
    assert by_id["b"]["assignment"] == by_id["d"]["assignment"]

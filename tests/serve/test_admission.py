"""Admission controller: queue bound, token bucket, deadline shedding.

All time-dependent behaviour runs against an injected fake clock, so
every decision here is deterministic.
"""

import pytest

from repro.core.errors import AdmissionRejected
from repro.serve.admission import AdmissionController
from repro.serve.protocol import STATUS_OVERLOADED, STATUS_SHED


class FakeClock:
    def __init__(self, now: float = 0.0) -> None:
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def test_admits_until_queue_bound():
    ctl = AdmissionController(max_queue=3, clock=FakeClock())
    assert all(ctl.try_admit().admitted for _ in range(3))
    decision = ctl.try_admit()
    assert not decision.admitted
    assert decision.status == STATUS_OVERLOADED
    assert "queue full" in decision.reason


def test_release_frees_a_slot():
    ctl = AdmissionController(max_queue=1, clock=FakeClock())
    assert ctl.try_admit().admitted
    assert not ctl.try_admit().admitted
    ctl.release()
    assert ctl.try_admit().admitted
    assert ctl.pending == 1


def test_release_never_goes_negative():
    ctl = AdmissionController(max_queue=2, clock=FakeClock())
    ctl.release()
    assert ctl.pending == 0
    assert ctl.try_admit().admitted


def test_token_bucket_exhausts_and_refills():
    clock = FakeClock()
    ctl = AdmissionController(max_queue=100, rate=10.0, burst=2, clock=clock)
    assert ctl.try_admit().admitted
    assert ctl.try_admit().admitted
    decision = ctl.try_admit()
    assert not decision.admitted and decision.status == STATUS_OVERLOADED
    assert "rate limit" in decision.reason
    clock.advance(0.1)  # one token at 10 req/s
    assert ctl.try_admit().admitted
    assert not ctl.try_admit().admitted


def test_token_bucket_caps_at_burst():
    clock = FakeClock()
    ctl = AdmissionController(max_queue=100, rate=10.0, burst=3, clock=clock)
    clock.advance(1000.0)  # a long idle period must not bank >burst tokens
    admitted = sum(ctl.try_admit().admitted for _ in range(10))
    assert admitted == 3


def test_deadline_shed_needs_an_estimate():
    # An unmeasured server never sheds on deadline: estimate is 0.
    ctl = AdmissionController(max_queue=10, clock=FakeClock())
    assert ctl.try_admit(deadline_ms=0.001).admitted


def test_deadline_shed_uses_ewma_and_depth():
    ctl = AdmissionController(max_queue=10, clock=FakeClock())
    ctl.observe_service(0.1)  # 100ms per request
    assert ctl.try_admit(deadline_ms=500).admitted  # depth 0 -> wait 0
    # depth 1 -> estimated wait 100ms
    decision = ctl.try_admit(deadline_ms=50)
    assert not decision.admitted
    assert decision.status == STATUS_SHED
    assert "shed" in decision.reason
    # A roomier deadline still gets in.
    assert ctl.try_admit(deadline_ms=500).admitted
    # Requests without deadlines are never deadline-shed.
    assert ctl.try_admit().admitted


def test_ewma_tracks_recent_service_times():
    ctl = AdmissionController(max_queue=10, clock=FakeClock())
    ctl.observe_service(1.0)
    for _ in range(50):
        ctl.observe_service(0.01)
    ctl.try_admit()  # depth 1
    assert ctl.estimated_wait_s() < 0.1  # converged near 10ms, not 1s


def test_decision_to_error_carries_status():
    ctl = AdmissionController(max_queue=1, clock=FakeClock())
    ctl.try_admit()
    error = ctl.try_admit().to_error()
    assert isinstance(error, AdmissionRejected)
    assert error.status == STATUS_OVERLOADED
    assert "queue full" in str(error)


def test_snapshot_gauges():
    clock = FakeClock()
    ctl = AdmissionController(max_queue=5, rate=10.0, burst=4, clock=clock)
    ctl.try_admit()
    ctl.observe_service(0.2)
    snap = ctl.snapshot()
    assert snap["serve.queue_depth"] == 1
    assert snap["serve.queue_bound"] == 5
    assert snap["serve.tokens"] == 3.0
    assert snap["serve.estimated_wait_s"] == pytest.approx(0.2)


@pytest.mark.parametrize("kwargs", [
    {"max_queue": 0},
    {"rate": 0.0},
    {"rate": -1.0},
    {"rate": 10.0, "burst": 0},
])
def test_constructor_validation(kwargs):
    with pytest.raises(ValueError):
        AdmissionController(**kwargs)


# ----------------------------------------------------------------------
# cold-start prior + idle decay (regression: the EWMA used to return 0
# until the first sample and to hold a stale spike forever)
# ----------------------------------------------------------------------
def test_service_prior_applies_before_first_sample():
    ctl = AdmissionController(
        max_queue=10, service_prior_s=0.05, clock=FakeClock()
    )
    assert ctl.effective_service_s() == pytest.approx(0.05)
    ctl.try_admit()  # depth 1 -> estimated wait 50ms
    decision = ctl.try_admit(deadline_ms=10)
    assert not decision.admitted and decision.status == STATUS_SHED
    assert ctl.try_admit(deadline_ms=500).admitted


def test_zero_prior_reproduces_never_shed_cold_start():
    ctl = AdmissionController(max_queue=10, clock=FakeClock())
    ctl.try_admit()
    assert ctl.try_admit(deadline_ms=0.001).admitted  # estimate is still 0


def test_ewma_decays_toward_prior_while_idle():
    clock = FakeClock()
    ctl = AdmissionController(
        max_queue=10, service_prior_s=0.01, decay_halflife_s=10.0,
        clock=clock,
    )
    ctl.observe_service(1.0)
    assert ctl.effective_service_s() == pytest.approx(1.0)
    clock.advance(10.0)  # one half-life: halfway back to the prior
    assert ctl.effective_service_s() == pytest.approx(
        0.01 + (1.0 - 0.01) * 0.5
    )
    clock.advance(190.0)  # twenty half-lives: effectively the prior
    assert ctl.effective_service_s() == pytest.approx(0.01, abs=1e-4)


def test_stale_spike_cannot_shed_forever():
    clock = FakeClock()
    ctl = AdmissionController(max_queue=10, clock=clock)  # default decay
    ctl.observe_service(5.0)  # one pathological request...
    ctl.try_admit()           # ...with depth 1 queued behind it
    assert not ctl.try_admit(deadline_ms=100).admitted
    clock.advance(300.0)      # ten half-lives later, the spike is gone
    assert ctl.try_admit(deadline_ms=100).admitted


def test_observation_after_idle_updates_from_decayed_base():
    clock = FakeClock()
    ctl = AdmissionController(
        max_queue=10, decay_halflife_s=30.0, clock=clock
    )
    ctl.observe_service(1.0)
    clock.advance(3000.0)  # the 1s spike has fully decayed (prior 0)
    ctl.observe_service(0.1)
    # The EWMA restarts from the decayed base, not the stale spike:
    # 0 + alpha * (0.1 - 0) = 0.02, nowhere near 1.0-ish.
    assert ctl.effective_service_s() < 0.1


def test_no_decay_when_halflife_disabled():
    clock = FakeClock()
    ctl = AdmissionController(
        max_queue=10, decay_halflife_s=None, clock=clock
    )
    ctl.observe_service(2.0)
    clock.advance(10_000.0)
    assert ctl.effective_service_s() == pytest.approx(2.0)


def test_snapshot_reports_service_estimate():
    clock = FakeClock()
    ctl = AdmissionController(
        max_queue=10, service_prior_s=0.25, clock=clock
    )
    assert ctl.snapshot()["serve.service_estimate_s"] == pytest.approx(0.25)


@pytest.mark.parametrize("kwargs", [
    {"service_prior_s": -0.1},
    {"decay_halflife_s": 0.0},
    {"decay_halflife_s": -5.0},
])
def test_prior_and_decay_validation(kwargs):
    with pytest.raises(ValueError):
        AdmissionController(**kwargs)

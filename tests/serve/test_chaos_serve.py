"""Serve-layer chaos: replica kills, hangs, garbled wires, hedge races.

Everything here injects faults from a seeded
:class:`~repro.engine.resilience.faults.FaultPlan` (or kills real
replica processes) and asserts the replicated tier's contract: clients
see zero failures, results stay digest-identical to the offline engine,
and every recovery action is visible in the metrics.

Run with ``pytest -m chaos``; excluded from tier-1 (slow: real
subprocess replicas, heartbeat waits, backoff sleeps).
"""

import asyncio
import os
import signal
import time

import pytest

from repro.engine import EngineConfig, RoutingEngine
from repro.engine.resilience.faults import FaultPlan
from repro.engine.resilience.retry import RetryPolicy
from repro.io.results import digest_records, result_record
from repro.serve import (
    AsyncRoutingClient,
    ReplicaSet,
    RouterConfig,
    RoutingRouter,
    RoutingServer,
    ServeConfig,
    StaticReplicaSet,
    STATUS_OK,
)
from repro.serve.loadgen import build_corpus
from repro.serve.protocol import parse_route_request, route_request
from repro.serve.replica import REPLICA_QUARANTINED, REPLICA_UP
from repro.serve.router import (
    BREAKER_CLOSED,
    BREAKER_HALF_OPEN,
    BREAKER_OPEN,
)

pytestmark = [pytest.mark.serve, pytest.mark.chaos]


class FakeClock:
    def __init__(self, now: float = 0.0) -> None:
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def _offline_digest(corpus, seed):
    engine = RoutingEngine(EngineConfig(seed=seed))
    results = engine.route_many(
        [(c, s) for c, s, _ in corpus],
        max_segments=[k for _, _, k in corpus],
    )
    engine.close()
    return digest_records(
        result_record(i, r.routing is not None,
                      list(r.routing.assignment) if r.routing else None,
                      r.error_type)
        for i, r in enumerate(results)
    )


def _online_digest(results):
    return digest_records(
        result_record(i, r.ok, r.assignment, r.error_type)
        for i, r in enumerate(results)
    )


async def _wait_for(predicate, timeout, interval=0.1):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        await asyncio.sleep(interval)
    return predicate()


# ----------------------------------------------------------------------
# replica death mid-run
# ----------------------------------------------------------------------
def test_replica_killed_mid_batch_is_digest_transparent():
    """Acceptance: kill 1 of 3 replicas mid-run; zero client-visible
    failures, >=1 recorded failover, digest identical to offline."""
    seed = 97
    corpus = build_corpus(10, seed=seed)
    plan = FaultPlan(kill_replica_after=5, seed=seed)

    async def main():
        replicas = ReplicaSet(
            3, seed=seed, heartbeat_interval=0.2, fault_plan=plan,
        )
        router = RoutingRouter(
            replicas,
            RouterConfig(port=0, http_port=0, seed=seed, forward_timeout=5.0),
            fault_plan=plan,
            own_replica_set=True,
        )
        async with router:
            async with AsyncRoutingClient(
                "127.0.0.1", router.port, timeout=30
            ) as client:
                results = []
                for _ in range(2):  # second pass forces failover traffic
                    for channel, conns, k in corpus:
                        results.append(await client.route(
                            channel, conns, max_segments=k
                        ))
            # The supervisor restarts the victim with backoff.
            restarted = await _wait_for(
                lambda: all(
                    s.state == REPLICA_UP for s in replicas.status()
                ),
                timeout=15.0,
            )
            counters = router.metrics_snapshot()["counters"]
            status = replicas.status()
        return results, counters, status, restarted

    results, counters, status, restarted = asyncio.run(main())
    assert all(r.status == STATUS_OK for r in results)  # zero failures
    assert counters["serve.replica.fault_kills"] == 1
    assert counters["serve.router.failovers"] >= 1
    assert sum(s.restarts for s in status) >= 1
    assert restarted, f"victim never came back: {status}"
    # Both passes answered identically, and identically to offline.
    half = len(corpus)
    assert [r.assignment for r in results[:half]] == [
        r.assignment for r in results[half:]
    ]
    assert _online_digest(results[:half]) == _offline_digest(corpus, seed)


def test_hung_replica_is_heartbeat_killed_and_replaced():
    """SIGSTOP (via the seeded plan) looks like a wedged event loop: the
    heartbeat watchdog must SIGKILL and restart it, and in-flight
    traffic must fail over instead of hanging."""
    seed = 101
    corpus = build_corpus(6, seed=seed)
    plan = FaultPlan(stop_replica_after=2, seed=seed)

    async def main():
        replicas = ReplicaSet(
            3, seed=seed, fault_plan=plan,
            heartbeat_interval=0.2, heartbeat_timeout=0.5,
            heartbeat_misses=2,
        )
        router = RoutingRouter(
            replicas,
            RouterConfig(port=0, http_port=0, seed=seed, forward_timeout=1.0),
            fault_plan=plan,
            own_replica_set=True,
        )
        async with router:
            async with AsyncRoutingClient(
                "127.0.0.1", router.port, timeout=30
            ) as client:
                results = []
                for channel, conns, k in corpus:
                    results.append(await client.route(
                        channel, conns, max_segments=k
                    ))
                    await asyncio.sleep(0.1)  # let heartbeats interleave
            killed = await _wait_for(
                lambda: router.metrics.snapshot()["counters"].get(
                    "serve.replica.heartbeat_kills", 0
                ) >= 1,
                timeout=15.0,
            )
            counters = router.metrics.snapshot()["counters"]
        return results, counters, killed

    results, counters, killed = asyncio.run(main())
    assert all(r.status == STATUS_OK for r in results)
    assert counters["serve.replica.fault_stops"] == 1
    assert killed, f"watchdog never fired: {counters}"
    assert counters["serve.replica.restarts"] >= 1


def test_crash_looping_replica_is_quarantined_and_routed_around():
    seed = 103
    corpus = build_corpus(4, seed=seed)
    policy = RetryPolicy(
        max_attempts=1, base_delay=0.05, max_delay=0.1, jitter=0.0
    )

    async def main():
        replicas = ReplicaSet(
            2, seed=seed, restart_policy=policy, flap_window_s=60.0,
            heartbeat_interval=0.1,
        )
        router = RoutingRouter(
            replicas,
            RouterConfig(port=0, http_port=0, seed=seed, forward_timeout=5.0),
            own_replica_set=True,
        )
        async with router:
            victim = replicas._replicas[0]
            for _ in range(2):  # budget is 1 restart: second kill flaps it
                pid = victim.process.pid
                os.kill(pid, signal.SIGKILL)
                await _wait_for(
                    lambda: victim.process.pid != pid
                    and victim.state == REPLICA_UP
                    or victim.state == REPLICA_QUARANTINED,
                    timeout=15.0,
                )
            quarantined = await _wait_for(
                lambda: victim.state == REPLICA_QUARANTINED, timeout=15.0
            )
            async with AsyncRoutingClient(
                "127.0.0.1", router.port, timeout=30
            ) as client:
                results = [
                    await client.route(channel, conns, max_segments=k)
                    for channel, conns, k in corpus
                ]
            counters = router.metrics.snapshot()["counters"]
        return quarantined, results, counters

    quarantined, results, counters = asyncio.run(main())
    assert quarantined
    assert counters["serve.replica.quarantined"] == 1
    # The router serves on, around the quarantined slot.
    assert all(r.status == STATUS_OK for r in results)


# ----------------------------------------------------------------------
# wire faults: drop + garble
# ----------------------------------------------------------------------
async def _static_stack(n_servers, seed, config=None, plan=None, clock=None):
    servers = []
    for _ in range(n_servers):
        server = RoutingServer(ServeConfig(port=0, http_port=0, seed=seed))
        await server.start()
        servers.append(server)
    replica_set = StaticReplicaSet(
        [("127.0.0.1", s.port) for s in servers]
    )
    kwargs = {} if clock is None else {"clock": clock}
    router = RoutingRouter(
        replica_set,
        config or RouterConfig(port=0, http_port=0, seed=seed),
        fault_plan=plan,
        **kwargs,
    )
    await router.start()
    return servers, replica_set, router


async def _static_teardown(servers, router):
    await router.drain()
    for server in servers:
        await server.drain()


def test_dropped_and_garbled_connections_stay_digest_transparent():
    seed = 13
    corpus = build_corpus(12, seed=seed)
    # Plan seed 8 provably injects both kinds on this corpus without
    # ever drawing three consecutive faults for one key (which would
    # exhaust all three replicas).
    plan = FaultPlan(conn_drop=0.1, conn_garble=0.1, seed=8)

    async def main():
        # A generous breaker threshold keeps this a pure wire-fault
        # transparency test; breaker policy is exercised separately.
        servers, _, router = await _static_stack(
            3, seed,
            config=RouterConfig(port=0, http_port=0, seed=seed,
                                failure_threshold=50),
            plan=plan,
        )
        try:
            async with AsyncRoutingClient(
                "127.0.0.1", router.port, timeout=30
            ) as client:
                results = []
                for _ in range(2):
                    for channel, conns, k in corpus:
                        results.append(await client.route(
                            channel, conns, max_segments=k
                        ))
        finally:
            await _static_teardown(servers, router)
        return results, router.metrics.snapshot()["counters"]

    results, counters = asyncio.run(main())
    # The plan is seeded: this specific run injects both fault kinds.
    assert counters["serve.router.injected_drop"] >= 1
    assert counters["serve.router.injected_garble"] >= 1
    assert counters["serve.router.invalid_responses"] >= 1
    assert counters["serve.router.failovers"] >= 2
    # ... and none of it reaches the client.
    assert all(r.status == STATUS_OK for r in results)
    half = len(corpus)
    assert _online_digest(results[:half]) == _offline_digest(corpus, seed)


def test_always_garbled_wire_never_reaches_the_client_as_ok():
    seed = 43
    channel, conns, k = build_corpus(1, seed=seed)[0]
    plan = FaultPlan(conn_garble=1.0, seed=seed)

    async def main():
        servers, _, router = await _static_stack(2, seed, plan=plan)
        try:
            async with AsyncRoutingClient(
                "127.0.0.1", router.port, timeout=30
            ) as client:
                result = await client.route(channel, conns, max_segments=k)
        finally:
            await _static_teardown(servers, router)
        return result, router.metrics.snapshot()["counters"]

    result, counters = asyncio.run(main())
    # Validation catches every corrupted assignment; with every replica
    # garbling, the router reports the failure rather than bad tracks.
    assert result.status != STATUS_OK
    assert result.error_type == "ReplicaError"
    assert counters["serve.router.invalid_responses"] == 2
    assert counters["serve.router.injected_garble"] == 2


# ----------------------------------------------------------------------
# breaker transitions under live forwarding
# ----------------------------------------------------------------------
def test_breaker_opens_half_opens_and_closes_through_traffic():
    seed = 47
    channel, conns, k = build_corpus(1, seed=seed)[0]
    clock = FakeClock()

    async def main():
        servers, replica_set, router = await _static_stack(
            2, seed,
            config=RouterConfig(
                port=0, http_port=0, seed=seed,
                failure_threshold=3, breaker_reset_s=5.0,
            ),
            clock=clock,
        )
        probe = await asyncio.start_server(lambda r, w: None, "127.0.0.1", 0)
        dead_port = probe.sockets[0].getsockname()[1]
        probe.close()
        await probe.wait_closed()
        states = []
        try:
            message = route_request("x", channel, conns, max_segments=k)
            key = RoutingRouter.request_key(parse_route_request(message))
            home = router.placement(key)[0]
            live_endpoint = replica_set.endpoint(home)
            replica_set.set_endpoint(home, ("127.0.0.1", dead_port))
            breaker = router.breakers[home]
            async with AsyncRoutingClient(
                "127.0.0.1", router.port, timeout=30
            ) as client:
                for _ in range(3):  # three failed forwards open it
                    result = await client.route(channel, conns,
                                                max_segments=k)
                    assert result.status == STATUS_OK  # failover covers
                states.append(breaker.state)           # -> open

                skipped = await client.route(channel, conns, max_segments=k)
                assert skipped.status == STATUS_OK
                before = router.metrics.snapshot()["counters"][
                    "serve.router.breaker_skips"
                ]

                clock.advance(5.0)
                states.append(breaker.state)           # -> half-open
                # Probe fails (still dead): re-opens without the full
                # threshold.
                await client.route(channel, conns, max_segments=k)
                states.append(breaker.state)           # -> open again

                clock.advance(5.0)
                replica_set.set_endpoint(home, live_endpoint)
                probe_ok = await client.route(channel, conns, max_segments=k)
                assert probe_ok.status == STATUS_OK
                states.append(breaker.state)           # -> closed
            counters = router.metrics.snapshot()["counters"]
        finally:
            await _static_teardown(servers, router)
        return states, counters, before

    states, counters, skips_after_open = asyncio.run(main())
    assert states == [
        BREAKER_OPEN, BREAKER_HALF_OPEN, BREAKER_OPEN, BREAKER_CLOSED,
    ]
    assert counters["serve.router.breaker_opens"] == 2
    assert skips_after_open >= 1


# ----------------------------------------------------------------------
# hedging
# ----------------------------------------------------------------------
def test_hedged_request_wins_and_cancels_loser_exactly_once():
    seed = 53
    corpus = build_corpus(8, seed=seed)

    async def main():
        # Replica 0 is a black hole: accepts connections, never answers.
        async def blackhole(reader, writer):
            try:
                while await reader.readline():
                    pass
            except (ConnectionError, asyncio.IncompleteReadError):
                pass
            finally:
                writer.close()

        hole = await asyncio.start_server(blackhole, "127.0.0.1", 0)
        hole_port = hole.sockets[0].getsockname()[1]
        real = RoutingServer(ServeConfig(port=0, http_port=0, seed=seed))
        await real.start()
        replica_set = StaticReplicaSet([
            ("127.0.0.1", hole_port), ("127.0.0.1", real.port),
        ])
        router = RoutingRouter(
            replica_set,
            RouterConfig(port=0, http_port=0, seed=seed,
                         hedge_ms=50.0, forward_timeout=10.0),
        )
        await router.start()
        try:
            # Pick an instance whose home replica is the black hole.
            pick = None
            for channel, conns, k in corpus:
                message = route_request("x", channel, conns, max_segments=k)
                key = RoutingRouter.request_key(parse_route_request(message))
                if router.placement(key)[0] == 0:
                    pick = (channel, conns, k)
                    break
            assert pick is not None, "no corpus key homed on replica 0"
            async with AsyncRoutingClient(
                "127.0.0.1", router.port, timeout=30
            ) as client:
                result = await client.route(
                    pick[0], pick[1], max_segments=pick[2]
                )
            counters = router.metrics_snapshot()["counters"]
        finally:
            await router.drain()
            hole.close()
            await hole.wait_closed()
            await real.drain()
        return result, counters

    result, counters = asyncio.run(main())
    assert result.status == STATUS_OK  # the hedge's answer
    assert counters["serve.router.hedges"] == 1
    assert counters["serve.router.hedge_wins"] == 1
    # The losing (hung) primary was cancelled exactly once.
    assert counters["serve.router.hedge_cancelled"] == 1
    assert counters["serve.router.replica1.hedged"] == 1


async def _slow_close_server():
    """A replica stand-in that accepts a request, stalls briefly past
    the hedge trigger, then drops the connection — a fast 'failed'."""
    async def handler(reader, writer):
        try:
            await reader.readline()
            await asyncio.sleep(0.2)
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            writer.close()

    return await asyncio.start_server(handler, "127.0.0.1", 0)


def test_fast_failure_does_not_wait_for_a_hung_hedge():
    """When the primary fails while its hedge is still racing, the
    failover loop must proceed to the next candidate immediately — a
    hung hedge must not hold the request hostage until
    forward_timeout."""
    seed = 67
    channel, conns, k = build_corpus(1, seed=seed)[0]

    async def main():
        async def blackhole(reader, writer):  # accepts, never answers
            try:
                while await reader.readline():
                    pass
            except (ConnectionError, asyncio.IncompleteReadError):
                pass
            finally:
                writer.close()

        hole = await asyncio.start_server(blackhole, "127.0.0.1", 0)
        closer = await _slow_close_server()
        real = RoutingServer(ServeConfig(port=0, http_port=0, seed=seed))
        await real.start()
        replica_set = StaticReplicaSet([
            ("127.0.0.1", 1), ("127.0.0.1", 2), ("127.0.0.1", 3),
        ])
        router = RoutingRouter(
            replica_set,
            RouterConfig(port=0, http_port=0, seed=seed,
                         hedge_ms=50.0, forward_timeout=30.0),
        )
        await router.start()
        try:
            message = route_request("x", channel, conns, max_segments=k)
            key = RoutingRouter.request_key(parse_route_request(message))
            order = router.placement(key)
            # Home fails fast-ish, the hedge target hangs, the third
            # candidate answers.
            replica_set.set_endpoint(
                order[0],
                ("127.0.0.1", closer.sockets[0].getsockname()[1]),
            )
            replica_set.set_endpoint(
                order[1],
                ("127.0.0.1", hole.sockets[0].getsockname()[1]),
            )
            replica_set.set_endpoint(order[2], ("127.0.0.1", real.port))
            async with AsyncRoutingClient(
                "127.0.0.1", router.port, timeout=30
            ) as client:
                started = time.monotonic()
                result = await client.route(channel, conns, max_segments=k)
                elapsed = time.monotonic() - started
            counters = router.metrics_snapshot()["counters"]
        finally:
            await router.drain()
            hole.close()
            closer.close()
            await hole.wait_closed()
            await closer.wait_closed()
            await real.drain()
        return result, elapsed, counters

    result, elapsed, counters = asyncio.run(main())
    assert result.status == STATUS_OK
    assert elapsed < 10.0  # nowhere near the 30 s forward_timeout
    assert counters["serve.router.hedges"] == 1
    assert counters["serve.router.failover_attempts"] == 1  # the primary
    assert counters["serve.router.hedge_cancelled"] == 1    # the straggler


def test_hedged_pair_that_both_fail_counts_two_failovers():
    seed = 71
    channel, conns, k = build_corpus(1, seed=seed)[0]

    async def main():
        failers = [await _slow_close_server() for _ in range(2)]
        replica_set = StaticReplicaSet([
            ("127.0.0.1", s.sockets[0].getsockname()[1]) for s in failers
        ])
        router = RoutingRouter(
            replica_set,
            RouterConfig(port=0, http_port=0, seed=seed,
                         hedge_ms=50.0, forward_timeout=30.0),
        )
        await router.start()
        try:
            async with AsyncRoutingClient(
                "127.0.0.1", router.port, timeout=30
            ) as client:
                result = await client.route(channel, conns, max_segments=k)
            counters = router.metrics_snapshot()["counters"]
        finally:
            await router.drain()
            for failer in failers:
                failer.close()
                await failer.wait_closed()
        return result, counters

    result, counters = asyncio.run(main())
    assert result.status != STATUS_OK
    assert result.error_type == "ReplicaError"
    assert counters["serve.router.hedges"] == 1
    # Two replicas were attempted and both failed: the failover
    # counters agree with the per-replica 'failed' counters.
    assert counters["serve.router.failovers"] == 2
    assert counters["serve.router.failover_attempts"] == 2
    assert sum(
        counters.get(f"serve.router.replica{i}.failed", 0)
        for i in range(2)
    ) == 2


def test_hedge_loses_to_a_merely_slow_primary():
    seed = 59
    channel, conns, k = build_corpus(1, seed=seed)[0]
    # Every forward is delayed past the hedge trigger, so the hedge
    # fires — but the primary (head start) still answers first.
    plan = FaultPlan(serve_latency=1.0, latency_seconds=0.3, seed=seed)

    async def main():
        servers, _, router = await _static_stack(
            2, seed,
            config=RouterConfig(port=0, http_port=0, seed=seed,
                                hedge_ms=50.0),
            plan=plan,
        )
        try:
            async with AsyncRoutingClient(
                "127.0.0.1", router.port, timeout=30
            ) as client:
                result = await client.route(channel, conns, max_segments=k)
        finally:
            await _static_teardown(servers, router)
        return result, router.metrics.snapshot()["counters"]

    result, counters = asyncio.run(main())
    assert result.status == STATUS_OK
    assert counters["serve.router.injected_latency"] >= 1
    assert counters["serve.router.hedges"] == 1
    assert counters["serve.router.hedge_cancelled"] == 1  # loser: the hedge
    assert counters.get("serve.router.hedge_wins", 0) == 0

"""Job API over the wire: submit/status/results/cancel against a live
server, admission bounds, router affinity forwarding, and route-traffic
isolation while a chip job runs."""

import asyncio

import pytest

from repro.core.errors import AdmissionRejected, ServeError
from repro.fpga.netlist import random_netlist
from repro.io.netlist_format import dumps_netlist
from repro.io.results import digest_records
from repro.jobs.pipeline import ChipSpec, run_chip_pipeline
from repro.serve import (
    AsyncRoutingClient,
    PROTOCOL_VERSION,
    RoutingServer,
    ServeConfig,
    STATUS_ERROR,
    STATUS_OK,
)
from repro.serve.loadgen import build_corpus
from repro.serve.replica import StaticReplicaSet
from repro.serve.router import RouterConfig, RoutingRouter

pytestmark = pytest.mark.serve


def _payload(seed=23, nets=14, tracks=5, cells_per_row=6, max_rounds=8):
    return {
        "netlist_text": dumps_netlist(random_netlist(nets, 3, seed=seed)),
        "rows": 3,
        "cells_per_row": cells_per_row,
        "tracks": tracks,
        "seg_types": 2,
        "seed": seed,
        "max_rounds": max_rounds,
    }


#: Converges in 2 rounds, ~20ms.
QUICK = _payload()
#: Never converges; runs for several seconds — the in-flight job for
#: the cancel/admission test.
HEAVY = _payload(seed=11, nets=300, tracks=4, cells_per_row=100, max_rounds=64)


def _config(tmp_path, **overrides):
    defaults = dict(
        port=0, http_port=0, max_wait_ms=2.0, drain_grace=5.0,
        jobs_dir=str(tmp_path / "jobs"),
    )
    defaults.update(overrides)
    return ServeConfig(**defaults)


def test_job_flow_with_concurrent_route_traffic(tmp_path):
    """Acceptance: a chip job streams back the offline digest while
    single-channel traffic on the same connection sees zero errors."""
    offline = run_chip_pipeline(ChipSpec.from_payload(QUICK))
    corpus = build_corpus(12, seed=42)

    async def main():
        server = RoutingServer(_config(tmp_path, seed=42))
        async with server:
            async with AsyncRoutingClient(
                "127.0.0.1", server.port, timeout=60
            ) as client:
                job = await client.submit_job(QUICK, job_id="wire-1")
                assert job["state"] in ("queued", "running")
                routed, status = await asyncio.gather(
                    client.route_many(
                        [(c, s) for c, s, _ in corpus],
                        max_segments=[k for _, _, k in corpus],
                    ),
                    client.wait_job("wire-1", timeout=60),
                )
                page = await client.fetch_job_records(
                    "wire-1", page_size=3
                )
                stats = await client.stats()
            return routed, status, page, stats

    routed, status, page, stats = asyncio.run(main())
    assert all(r.status == STATUS_OK for r in routed)
    assert status["state"] == "done" and status["ok"] is True
    assert status["digest"] == offline.digest
    assert page["digest"] == offline.digest
    assert digest_records(page["records"]) == offline.digest
    counters = stats["counters"]
    assert counters["jobs.completed"] == 1
    assert counters["serve.job_requests"] >= 3


def test_protocol_and_spec_errors_are_typed(tmp_path):
    async def main():
        server = RoutingServer(_config(tmp_path))
        async with server:
            async with AsyncRoutingClient(
                "127.0.0.1", server.port
            ) as client:
                missing_id = await client.call({
                    "v": PROTOCOL_VERSION, "id": "x1", "op": "job.status",
                })
                bad_spec = await client.call({
                    "v": PROTOCOL_VERSION, "id": "x2", "op": "job.submit",
                    "job_id": "bad", "spec": {"rows": 3},
                })
                unknown = await client.call({
                    "v": PROTOCOL_VERSION, "id": "x3", "op": "job.results",
                    "job_id": "never-submitted",
                })
            return missing_id, bad_spec, unknown

    missing_id, bad_spec, unknown = asyncio.run(main())
    assert missing_id["status"] == STATUS_ERROR
    assert missing_id["error_type"] == "ProtocolError"
    assert bad_spec["status"] == STATUS_ERROR
    assert bad_spec["error_type"] == "FormatError"
    assert unknown["status"] == STATUS_ERROR
    assert unknown["error_type"] == "JobNotFound"


def test_job_admission_bounds_over_wire(tmp_path):
    async def main():
        server = RoutingServer(_config(
            tmp_path, max_active_jobs=1, max_queued_jobs=1,
        ))
        async with server:
            async with AsyncRoutingClient(
                "127.0.0.1", server.port, timeout=60
            ) as client:
                await client.submit_job(HEAVY, job_id="busy")
                await asyncio.sleep(0.3)  # worker claims it
                await client.submit_job(QUICK, job_id="waiting")
                with pytest.raises(AdmissionRejected) as excinfo:
                    await client.submit_job(
                        _payload(seed=24), job_id="rejected"
                    )
                assert excinfo.value.status == "overloaded"
                cancelled = await client.cancel_job("busy")
                assert cancelled["cancel_requested"] is True
                final = await client.wait_job("busy", timeout=60)
                assert final["state"] == "cancelled"
                # The queued job still runs to completion afterwards.
                assert (await client.wait_job("waiting", timeout=60))[
                    "state"
                ] == "done"

    asyncio.run(main())


def test_router_forwards_jobs_with_affinity(tmp_path):
    offline = run_chip_pipeline(ChipSpec.from_payload(QUICK))

    async def main():
        server = RoutingServer(_config(tmp_path, seed=7))
        async with server:
            replica_set = StaticReplicaSet([("127.0.0.1", server.port)])
            router = RoutingRouter(
                replica_set, RouterConfig(port=0, http_port=0, seed=7)
            )
            async with router:
                async with AsyncRoutingClient(
                    "127.0.0.1", router.port, timeout=60
                ) as client:
                    await client.submit_job(QUICK, job_id="routed-1")
                    status = await client.wait_job("routed-1", timeout=60)
                    page = await client.fetch_job_records("routed-1")
                    # The replica's typed not-found answer passes
                    # through the router untouched.
                    with pytest.raises(ServeError, match="JobNotFound"):
                        await client.job_status("missing")
            return status, page

    status, page = asyncio.run(main())
    assert status["state"] == "done"
    assert status["digest"] == offline.digest
    assert page["digest"] == offline.digest

"""Load generator: corpus determinism, traffic modes, report shape."""

import asyncio
import threading

import pytest

from repro.io.text_format import dumps_instance
from repro.serve import RoutingServer, ServeConfig
from repro.serve.loadgen import (
    _percentile,
    build_corpus,
    render_report,
    run_loadgen,
)

pytestmark = pytest.mark.serve


class ServerThread:
    def __init__(self, config: ServeConfig) -> None:
        self.server = RoutingServer(config)
        self.loop = asyncio.new_event_loop()
        self._ready = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)

    def _run(self) -> None:
        asyncio.set_event_loop(self.loop)
        self.loop.run_until_complete(self.server.start())
        self._ready.set()
        self.loop.run_until_complete(self.server.serve_forever())
        self.loop.close()

    def __enter__(self) -> "ServerThread":
        self._thread.start()
        assert self._ready.wait(10), "server failed to start"
        return self

    def __exit__(self, *exc_info) -> None:
        self.loop.call_soon_threadsafe(self.server.request_drain)
        self._thread.join(15)


def test_build_corpus_is_deterministic():
    a = build_corpus(4, seed=77)
    b = build_corpus(4, seed=77)
    other = build_corpus(4, seed=78)
    dump = lambda corpus: [dumps_instance(c, s) for c, s, _ in corpus]  # noqa: E731
    assert dump(a) == dump(b)
    assert dump(a) != dump(other)
    # Entries are distinct instances, not one instance repeated.
    assert len(set(dump(a))) == len(a)


def test_percentile_nearest_rank():
    values = [1.0, 2.0, 3.0, 4.0]
    assert _percentile(values, 0.0) == 1.0
    assert _percentile(values, 1.0) == 4.0
    assert _percentile(values, 0.5) == 3.0  # round(0.5 * 3) = 2
    assert _percentile([], 0.5) == 0.0


def test_closed_loop_report_with_digest():
    with ServerThread(ServeConfig(port=0, http_port=0, seed=55)) as st:
        report = run_loadgen(
            "127.0.0.1", st.server.port,
            corpus=build_corpus(6, seed=55),
            requests=6, mode="closed", concurrency=3, seed=55,
        )
    assert report["completed"] == 6
    assert report["protocol_errors"] == 0
    assert report["statuses"] == {"ok": 6}
    assert report["shed"] == 0
    assert report["digest"]  # 1:1 corpus coverage -> digest present
    assert report["throughput_rps"] > 0
    assert report["latency_ms"]["p50"] <= report["latency_ms"]["p99"]
    text = render_report(report)
    assert "ok=6" in text and report["digest"] in text


def test_open_loop_mode_runs_and_counts():
    with ServerThread(ServeConfig(port=0, http_port=0, seed=56)) as st:
        report = run_loadgen(
            "127.0.0.1", st.server.port,
            corpus=build_corpus(4, seed=56),
            requests=8, mode="open", rate=200.0, seed=56,
        )
    assert report["mode"] == "open"
    assert report["rate"] == 200.0
    assert report["completed"] == 8
    # 8 requests over a 4-entry corpus: double coverage still digests
    # (first response per entry), provided every repeat agreed.
    assert report["consistent"] is True
    assert report["digest"] is not None


def test_open_loop_requires_rate():
    with pytest.raises(ValueError, match="rate"):
        run_loadgen(
            "127.0.0.1", 1, corpus=build_corpus(1, seed=1),
            requests=1, mode="open", rate=None,
        )


def test_shed_responses_break_the_digest_but_are_counted():
    with ServerThread(ServeConfig(
        port=0, http_port=0, seed=57, max_queue=2,
        max_batch=2, max_wait_ms=50.0,
    )) as st:
        report = run_loadgen(
            "127.0.0.1", st.server.port,
            corpus=build_corpus(12, seed=57),
            requests=12, mode="closed", concurrency=12, seed=57,
        )
    assert report["completed"] == 12
    assert report["protocol_errors"] == 0
    if report["shed"]:
        assert report["digest"] is None
        assert any(
            s in report["statuses"] for s in ("shed", "overloaded")
        )


def test_empty_corpus_rejected():
    with pytest.raises(ValueError, match="empty"):
        run_loadgen("127.0.0.1", 1, corpus=[], requests=1)

"""End-to-end server tests: digest parity, tracing, shedding, drain.

Everything runs against a real server bound to ephemeral ports on
loopback — the asyncio protocol listener, the admission layer, the
micro-batcher, and the engine are all live.
"""

import asyncio

import pytest

from repro.engine import EngineConfig, RoutingEngine
from repro.io.results import result_stream_digest
from repro.obs.report import build_traces
from repro.obs.trace import ListTraceSink
from repro.serve import (
    AsyncRoutingClient,
    RoutingServer,
    ServeConfig,
    STATUS_OK,
    STATUS_OVERLOADED,
    STATUS_SHED,
)
from repro.io.results import digest_records, result_record
from repro.serve.loadgen import build_corpus

pytestmark = pytest.mark.serve


def _config(**overrides):
    defaults = dict(port=0, http_port=0, max_wait_ms=2.0, drain_grace=5.0)
    defaults.update(overrides)
    return ServeConfig(**defaults)


async def _http_get(port, path):
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    writer.write(f"GET {path} HTTP/1.0\r\n\r\n".encode())
    await writer.drain()
    raw = await reader.read()
    writer.close()
    head, _, body = raw.decode().partition("\r\n\r\n")
    status = int(head.split()[1])
    return status, body


def test_fanin_digest_matches_offline_engine():
    """Acceptance: >=50 async fan-in requests, digest-identical offline."""
    corpus = build_corpus(50, seed=42)
    seed = 42

    async def main():
        server = RoutingServer(_config(seed=seed, max_batch=32))
        async with server:
            async with AsyncRoutingClient(
                "127.0.0.1", server.port, timeout=60
            ) as client:
                return await client.route_many(
                    [(c, s) for c, s, _ in corpus],
                    max_segments=[k for _, _, k in corpus],
                )

    served = asyncio.run(main())
    assert len(served) == 50
    assert all(r.status == STATUS_OK for r in served)

    online_digest = digest_records(
        result_record(i, r.ok, r.assignment, r.error_type)
        for i, r in enumerate(served)
    )
    engine = RoutingEngine(EngineConfig(seed=seed))
    offline = engine.route_many(
        [(c, s) for c, s, _ in corpus],
        max_segments=[k for _, _, k in corpus],
    )
    assert online_digest == result_stream_digest(offline)


def test_trace_spans_link_client_server_engine():
    """Acceptance: one connected span tree per request, client->worker."""
    corpus = build_corpus(4, seed=7)
    sink = ListTraceSink()

    async def main():
        server = RoutingServer(_config(seed=7), trace_sink=sink)
        async with server:
            async with AsyncRoutingClient(
                "127.0.0.1", server.port, timeout=30,
                trace_sink=sink, seed=7,
            ) as client:
                return await client.route_many(
                    [(c, s) for c, s, _ in corpus],
                    max_segments=[k for _, _, k in corpus],
                )

    results = asyncio.run(main())
    assert all(r.status == STATUS_OK for r in results)

    traces = build_traces(sink.spans)
    assert len(traces) == len(corpus)  # one connected tree per request
    for trace in traces.values():
        trace.validate()  # every parent link resolves, exactly one root
        assert trace.root["name"] == "client.request"
        names = trace.names()
        assert "serve.request" in names
        assert "request" in names  # the engine's root span
        by_id = trace.by_id
        serve_span = next(
            s for s in trace.spans if s["name"] == "serve.request"
        )
        engine_span = next(
            s for s in trace.spans if s["name"] == "request"
        )
        # client.request <- serve.request <- request
        assert by_id[serve_span["parent_id"]]["name"] == "client.request"
        assert by_id[engine_span["parent_id"]]["name"] == "serve.request"
        assert serve_span["attrs"]["status"] == STATUS_OK


def test_burst_beyond_queue_bound_sheds_typed_responses():
    """Acceptance: overload produces typed rejections, not timeouts."""
    corpus = build_corpus(4, seed=9)

    async def main():
        # Tiny queue and a slow window make overflow deterministic.
        server = RoutingServer(_config(
            seed=9, max_queue=2, max_batch=2, max_wait_ms=50.0,
        ))
        async with server:
            async with AsyncRoutingClient(
                "127.0.0.1", server.port, timeout=60
            ) as client:
                return await asyncio.gather(*(
                    client.route(
                        corpus[i % len(corpus)][0],
                        corpus[i % len(corpus)][1],
                        max_segments=corpus[i % len(corpus)][2],
                    )
                    for i in range(24)
                ))

    results = asyncio.run(main())
    statuses = {r.status for r in results}
    rejected = [
        r for r in results
        if r.status in (STATUS_SHED, STATUS_OVERLOADED)
    ]
    assert rejected, f"no typed rejections in {statuses}"
    for r in rejected:
        assert r.error_type == "AdmissionRejected"
        assert r.assignment is None
    # The server stayed useful under overload.
    assert any(r.status == STATUS_OK for r in results)


def test_rate_limit_rejects_with_overloaded():
    corpus = build_corpus(1, seed=5)
    channel, conns, k = corpus[0]

    async def main():
        server = RoutingServer(_config(seed=5, rate=1.0, burst=1))
        async with server:
            async with AsyncRoutingClient(
                "127.0.0.1", server.port, timeout=30
            ) as client:
                first = await client.route(channel, conns, max_segments=k)
                second = await client.route(channel, conns, max_segments=k)
                return first, second

    first, second = asyncio.run(main())
    assert first.status == STATUS_OK
    assert second.status == STATUS_OVERLOADED
    assert second.error_type == "AdmissionRejected"


def test_pipelined_requests_answered_out_of_order_by_id():
    corpus = build_corpus(6, seed=21)

    async def main():
        server = RoutingServer(_config(seed=21, max_batch=3))
        async with server:
            async with AsyncRoutingClient(
                "127.0.0.1", server.port, timeout=30
            ) as client:
                results = await client.route_many(
                    [(c, s) for c, s, _ in corpus],
                    max_segments=[k for _, _, k in corpus],
                )
                pong = await client.ping()
                stats = await client.stats()
                return results, pong, stats

    results, pong, stats = asyncio.run(main())
    # Each response matched its request despite concurrent in-flight IDs.
    assert [r.request_id for r in results] == [
        f"q{i + 1}" for i in range(len(corpus))
    ]
    assert pong["pong"] is True and pong["ready"] is True
    assert stats["counters"]["serve.requests"] == len(corpus)
    assert stats["counters"]["serve.ok"] == len(corpus)


def test_malformed_lines_get_protocol_error_responses():
    async def main():
        server = RoutingServer(_config())
        async with server:
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", server.port
            )
            writer.write(b"this is not json\n")
            writer.write(b'{"v": 99, "id": "x", "op": "ping"}\n')
            writer.write(b'{"v": 1, "id": "ok1", "op": "ping"}\n')
            await writer.drain()
            lines = [await reader.readline() for _ in range(3)]
            writer.close()
            stats = server.metrics_snapshot()
        return lines, stats

    lines, stats = asyncio.run(main())
    import json

    messages = [json.loads(line) for line in lines]
    by_status = sorted(m["status"] for m in messages)
    assert by_status == ["error", "error", "ok"]
    for m in messages:
        if m["status"] == "error":
            assert m["error_type"] == "ProtocolError"
    assert stats["counters"]["serve.protocol_errors"] == 2


def test_http_probes_and_metrics():
    corpus = build_corpus(2, seed=3)

    async def main():
        server = RoutingServer(_config(seed=3))
        async with server:
            async with AsyncRoutingClient(
                "127.0.0.1", server.port, timeout=30
            ) as client:
                await client.route_many(
                    [(c, s) for c, s, _ in corpus],
                    max_segments=[k for _, _, k in corpus],
                )
            health = await _http_get(server.http_port, "/healthz")
            ready = await _http_get(server.http_port, "/readyz")
            metrics = await _http_get(server.http_port, "/metrics")
            missing = await _http_get(server.http_port, "/nope")
        return health, ready, metrics, missing

    health, ready, metrics, missing = asyncio.run(main())
    assert health == (200, "ok\n")
    assert ready == (200, "ready\n")
    assert missing[0] == 404
    assert metrics[0] == 200
    body = metrics[1]
    # Serve counters, admission gauges, and engine counters all render.
    assert "segroute_serve_requests_total 2" in body
    assert "segroute_serve_queue_bound 64" in body
    assert "segroute_requests_total 2" in body
    assert "# TYPE segroute_serve_latency summary" in body


def test_drain_finishes_inflight_and_refuses_new_work():
    corpus = build_corpus(8, seed=31)

    async def main():
        server = RoutingServer(_config(
            seed=31, max_batch=4, max_wait_ms=30.0,
        ))
        await server.start()
        client = AsyncRoutingClient("127.0.0.1", server.port, timeout=30)
        await client.connect()
        inflight = [
            asyncio.ensure_future(client.route(c, s, max_segments=k))
            for c, s, k in corpus
        ]
        await asyncio.sleep(0)  # let the requests hit the wire
        ready_before = (await _http_get(server.http_port, "/readyz"))[0]
        drain = asyncio.ensure_future(server.drain())
        results = await asyncio.gather(*inflight, return_exceptions=True)
        await drain
        await client.close()
        return ready_before, results

    ready_before, results = asyncio.run(main())
    assert ready_before == 200
    completed = [r for r in results if not isinstance(r, Exception)]
    # Admitted work completes; nothing hangs (gather returned at all).
    assert completed
    assert all(r.status == STATUS_OK for r in completed)


def test_drain_is_idempotent_and_closes_owned_engine():
    async def main():
        server = RoutingServer(_config())
        await server.start()
        await server.drain()
        await server.drain()  # second call is a no-op
        return server.engine.closed

    assert asyncio.run(main()) is True


def test_external_engine_is_not_closed_by_drain():
    engine = RoutingEngine(EngineConfig(seed=1))

    async def main():
        server = RoutingServer(_config(), engine=engine)
        await server.start()
        await server.drain()

    asyncio.run(main())
    assert engine.closed is False
    engine.close()


@pytest.mark.parametrize("kwargs", [
    {"jobs": 0},
    {"max_wait_ms": -1.0},
    {"drain_grace": -1.0},
])
def test_config_validation(kwargs):
    with pytest.raises(ValueError):
        ServeConfig(**kwargs)


def test_readyz_flips_the_instant_drain_is_requested():
    """Drain race: not-ready must be visible *before* drain completes,
    and new routes must be refused while in-flight work finishes."""
    corpus = build_corpus(4, seed=43)

    async def main():
        server = RoutingServer(_config(seed=43, max_wait_ms=50.0))
        await server.start()
        client = AsyncRoutingClient("127.0.0.1", server.port, timeout=30)
        await client.connect()
        # Requests sitting in the batch window when drain is requested.
        inflight = [
            asyncio.ensure_future(client.route(c, s, max_segments=k))
            for c, s, k in corpus[:3]
        ]
        # Long enough to be admitted into the open batch window, short
        # enough (< max_wait_ms) that the batch has not flushed yet.
        await asyncio.sleep(0.02)
        server.request_drain()
        # The probe flips immediately — the listener is still accepting
        # (drain has not even started), but load balancers must stop
        # sending new work now.
        ready = await _http_get(server.http_port, "/readyz")
        late = await client.route(*corpus[3][:2], max_segments=corpus[3][2])
        results = await asyncio.gather(*inflight, return_exceptions=True)
        await server.drain()
        stats = server.metrics.snapshot()["counters"]
        await client.close()
        return ready, late, results, stats

    ready, late, results, stats = asyncio.run(main())
    assert ready == (503, "draining\n")
    assert late.status == STATUS_OVERLOADED
    assert late.error == "server is draining"
    assert stats["serve.drain_refused"] == 1
    completed = [r for r in results if not isinstance(r, Exception)]
    assert completed and all(r.status == STATUS_OK for r in completed)


def test_port_file_written_after_bind(tmp_path):
    import json
    import os

    port_file = tmp_path / "server.json"

    async def main():
        server = RoutingServer(_config(port_file=str(port_file)))
        async with server:
            ports = json.loads(port_file.read_text())
            assert ports["port"] == server.port
            assert ports["http_port"] == server.http_port
            assert ports["pid"] == os.getpid()

    asyncio.run(main())


def test_serve_path_counts_exactly_one_miss_per_missed_request():
    """Regression: the fast-path probe must not add a second miss.

    ``route_cached`` probes the canonical cache before the batcher
    path; before the fix the probe counted one ``InstanceCache`` miss
    and the batcher's full path counted another, so every missed
    request was double-counted and ``hit_rate`` was skewed low.
    """
    corpus = build_corpus(1, seed=7)
    channel, conns, k = corpus[0]

    async def main():
        server = RoutingServer(_config())
        async with server:
            async with AsyncRoutingClient(
                "127.0.0.1", server.port, timeout=30
            ) as client:
                first = await client.route(channel, conns, max_segments=k)
                cache = server.engine.cache
                after_miss = (cache.hits, cache.misses)
                second = await client.route(channel, conns, max_segments=k)
                after_hit = (cache.hits, cache.misses)
                counters = server.metrics_snapshot()["counters"]
        return first, second, after_miss, after_hit, counters

    first, second, after_miss, after_hit, counters = asyncio.run(main())
    assert first.status == STATUS_OK and second.status == STATUS_OK
    # One missed request -> exactly one counted miss (probe + fallback
    # used to count two), and no phantom hits.
    assert after_miss == (0, 1)
    # The repeat is answered by the fast path: one hit, miss count
    # unchanged.
    assert after_hit == (1, 1)
    assert counters["serve.cache_fastpath"] == 1
    assert counters["cache.hits"] == 1
    assert counters["cache.misses"] == 1


def test_restarted_server_answers_from_persistent_cache(tmp_path):
    """Acceptance: a restarted server (same ``cache_dir``) serves
    previously-solved instances via the cache fast path, digest-
    identical to the first life's answers."""
    cache_dir = str(tmp_path / "cache")
    corpus = build_corpus(6, seed=11)

    async def one_life():
        server = RoutingServer(_config(seed=11, cache_dir=cache_dir))
        async with server:
            async with AsyncRoutingClient(
                "127.0.0.1", server.port, timeout=60
            ) as client:
                served = await client.route_many(
                    [(c, s) for c, s, _ in corpus],
                    max_segments=[k for _, _, k in corpus],
                )
            counters = server.metrics_snapshot()["counters"]
        return served, counters

    first, first_counters = asyncio.run(one_life())
    assert all(r.status == STATUS_OK for r in first)
    assert first_counters.get("cache.persist.stores", 0) == len(corpus)

    # "Restart": a brand-new server process state over the same dir.
    second, second_counters = asyncio.run(one_life())
    assert all(r.status == STATUS_OK for r in second)
    assert second_counters["cache.persist.hits"] >= len(corpus)
    assert second_counters["serve.cache_fastpath"] == len(corpus)
    # Digest-identical answers across the restart.
    digest = lambda served: digest_records(
        result_record(i, r.ok, r.assignment, r.error_type)
        for i, r in enumerate(served)
    )
    assert digest(second) == digest(first)

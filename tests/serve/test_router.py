"""Failover router: placement, breakers, failover, spill, drain.

The router is tested against a :class:`StaticReplicaSet` naming real
in-loop :class:`RoutingServer` instances — the full protocol path runs,
only the subprocess supervisor is swapped out (that one is exercised in
``test_replica.py`` and the chaos suite).
"""

import asyncio
import json

import pytest

from repro.engine import EngineConfig, RoutingEngine
from repro.io.results import digest_records, result_record
from repro.serve import (
    AsyncRoutingClient,
    CircuitBreaker,
    RouterConfig,
    RoutingRouter,
    RoutingServer,
    ServeConfig,
    StaticReplicaSet,
    STATUS_OK,
    STATUS_OVERLOADED,
)
from repro.serve.loadgen import build_corpus
from repro.serve.protocol import parse_route_request, route_request
from repro.serve.router import (
    BREAKER_CLOSED,
    BREAKER_HALF_OPEN,
    BREAKER_OPEN,
)

pytestmark = pytest.mark.serve


class FakeClock:
    def __init__(self, now: float = 0.0) -> None:
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


# ----------------------------------------------------------------------
# circuit breaker
# ----------------------------------------------------------------------
def test_breaker_opens_after_consecutive_failures():
    clock = FakeClock()
    breaker = CircuitBreaker(failure_threshold=3, clock=clock)
    assert breaker.state == BREAKER_CLOSED
    assert breaker.record_failure() is False
    assert breaker.record_failure() is False
    assert breaker.state == BREAKER_CLOSED and breaker.allow()
    assert breaker.record_failure() is True  # newly opened
    assert breaker.state == BREAKER_OPEN
    assert not breaker.allow()


def test_breaker_success_resets_failure_streak():
    breaker = CircuitBreaker(failure_threshold=2, clock=FakeClock())
    breaker.record_failure()
    breaker.record_success()
    breaker.record_failure()
    assert breaker.state == BREAKER_CLOSED  # streak broken by the success


def test_breaker_half_open_admits_a_single_probe():
    clock = FakeClock()
    breaker = CircuitBreaker(
        failure_threshold=1, reset_timeout_s=5.0, clock=clock
    )
    breaker.record_failure()
    assert not breaker.allow()
    clock.advance(5.0)
    assert breaker.state == BREAKER_HALF_OPEN
    assert breaker.allow()       # the probe
    assert not breaker.allow()   # but only one
    breaker.record_success()
    assert breaker.state == BREAKER_CLOSED
    assert breaker.allow()


def test_breaker_probe_failure_reopens():
    clock = FakeClock()
    breaker = CircuitBreaker(
        failure_threshold=3, reset_timeout_s=1.0, clock=clock
    )
    for _ in range(3):
        breaker.record_failure()
    clock.advance(1.0)
    assert breaker.allow()
    # One failed probe re-opens immediately, threshold notwithstanding.
    assert breaker.record_failure() is True
    assert breaker.state == BREAKER_OPEN
    assert not breaker.allow()


def test_breaker_stale_probe_expires_and_readmits():
    clock = FakeClock()
    breaker = CircuitBreaker(
        failure_threshold=1, reset_timeout_s=1.0, clock=clock
    )
    breaker.record_failure()
    clock.advance(1.0)
    assert breaker.allow()       # the probe
    assert not breaker.allow()   # outstanding
    # The probe's outcome is never recorded (lost caller): after the
    # reset timeout a replacement probe must be admitted, not a wedge.
    clock.advance(1.0)
    assert breaker.allow()
    assert not breaker.allow()


def test_breaker_abandoned_probe_releases_the_slot():
    clock = FakeClock()
    breaker = CircuitBreaker(
        failure_threshold=1, reset_timeout_s=1.0, clock=clock
    )
    breaker.record_failure()
    clock.advance(1.0)
    assert breaker.allow()
    assert not breaker.allow()
    breaker.record_abandoned()  # probe cancelled, e.g. a lost hedge race
    assert breaker.allow()


@pytest.mark.parametrize("kwargs", [
    {"failure_threshold": 0},
    {"reset_timeout_s": 0.0},
])
def test_breaker_validation(kwargs):
    with pytest.raises(ValueError):
        CircuitBreaker(**kwargs)


@pytest.mark.parametrize("kwargs", [
    {"ring_points": 0},
    {"hedge_ms": -1.0},
    {"hedge_percentile": 0.0},
    {"hedge_percentile": 1.0},
    {"drain_grace": -1.0},
])
def test_router_config_validation(kwargs):
    with pytest.raises(ValueError):
        RouterConfig(**kwargs)


# ----------------------------------------------------------------------
# placement
# ----------------------------------------------------------------------
def _keys(n, seed=0):
    corpus = build_corpus(n, seed=seed)
    keys = []
    for i, (channel, conns, k) in enumerate(corpus):
        message = route_request(f"p{i}", channel, conns, max_segments=k)
        keys.append(RoutingRouter.request_key(parse_route_request(message)))
    return keys


def test_placement_is_deterministic_and_complete():
    replica_set = StaticReplicaSet([("h", 1), ("h", 2), ("h", 3)])
    router_a = RoutingRouter(replica_set, RouterConfig(seed=5))
    router_b = RoutingRouter(replica_set, RouterConfig(seed=5))
    for key in _keys(10, seed=5):
        order = router_a.placement(key)
        assert order == router_b.placement(key)  # pure function of (seed, key)
        assert sorted(order) == [0, 1, 2]        # full failover order


def test_placement_spreads_keys_across_replicas():
    replica_set = StaticReplicaSet([("h", 1), ("h", 2), ("h", 3)])
    router = RoutingRouter(replica_set, RouterConfig(seed=7))
    primaries = {router.placement(key)[0] for key in _keys(40, seed=7)}
    assert len(primaries) == 3  # no degenerate all-on-one-replica ring


def test_placement_differs_across_seeds():
    replica_set = StaticReplicaSet([("h", 1), ("h", 2), ("h", 3)])
    keys = _keys(20, seed=11)
    a = [RoutingRouter(replica_set, RouterConfig(seed=1)).placement(k)[0]
         for k in keys]
    b = [RoutingRouter(replica_set, RouterConfig(seed=2)).placement(k)[0]
         for k in keys]
    assert a != b


# ----------------------------------------------------------------------
# end-to-end forwarding
# ----------------------------------------------------------------------
async def _serving_stack(n_servers, seed, config=None, clock=None):
    """N in-loop replica servers + a router fronting them."""
    servers = []
    for _ in range(n_servers):
        server = RoutingServer(ServeConfig(port=0, http_port=0, seed=seed))
        await server.start()
        servers.append(server)
    replica_set = StaticReplicaSet(
        [("127.0.0.1", s.port) for s in servers]
    )
    kwargs = {} if clock is None else {"clock": clock}
    router = RoutingRouter(
        replica_set, config or RouterConfig(port=0, http_port=0, seed=seed),
        **kwargs,
    )
    await router.start()
    return servers, replica_set, router


async def _teardown(servers, router):
    await router.drain()
    for server in servers:
        await server.drain()


def test_router_routes_digest_identical_to_offline_engine():
    seed = 17
    corpus = build_corpus(12, seed=seed)

    async def main():
        servers, _, router = await _serving_stack(3, seed)
        try:
            async with AsyncRoutingClient(
                "127.0.0.1", router.port, timeout=30
            ) as client:
                pong = await client.ping()
                results = await client.route_many(
                    [(c, s) for c, s, _ in corpus],
                    max_segments=[k for _, _, k in corpus],
                )
                stats = await client.stats()
        finally:
            await _teardown(servers, router)
        return pong, results, stats

    pong, results, stats = asyncio.run(main())
    assert pong["ready"] is True and pong["replicas"] == 3
    assert all(r.status == STATUS_OK for r in results)
    online = digest_records(
        result_record(i, r.ok, r.assignment, r.error_type)
        for i, r in enumerate(results)
    )
    engine = RoutingEngine(EngineConfig(seed=seed))
    offline = engine.route_many(
        [(c, s) for c, s, _ in corpus],
        max_segments=[k for _, _, k in corpus],
    )
    engine.close()
    assert online == digest_records(
        result_record(i, r.routing is not None,
                      list(r.routing.assignment) if r.routing else None,
                      r.error_type)
        for i, r in enumerate(offline)
    )
    counters = stats["counters"]
    assert counters["serve.router.requests"] == len(corpus)
    assert counters["serve.router.ok"] == len(corpus)
    assert counters.get("serve.router.failovers", 0) == 0
    # Per-replica counters reach the snapshot, flat and nested.
    assert sum(
        counters.get(f"serve.router.replica{i}.ok", 0) for i in range(3)
    ) == len(corpus)
    assert set(stats["replicas"]) == {"0", "1", "2"}


def test_router_fails_over_past_a_down_replica():
    seed = 19
    channel, conns, k = build_corpus(1, seed=seed)[0]

    async def main():
        servers, replica_set, router = await _serving_stack(3, seed)
        try:
            message = route_request("x", channel, conns, max_segments=k)
            key = RoutingRouter.request_key(parse_route_request(message))
            home = router.placement(key)[0]
            replica_set.set_down(home)
            async with AsyncRoutingClient(
                "127.0.0.1", router.port, timeout=30
            ) as client:
                result = await client.route(channel, conns, max_segments=k)
        finally:
            await _teardown(servers, router)
        return home, result, router.metrics_snapshot()["counters"]

    home, result, counters = asyncio.run(main())
    assert result.status == STATUS_OK
    assert counters["serve.router.failovers"] == 1
    assert counters["serve.router.failover_down"] == 1
    assert counters[f"serve.router.replica{home}.down_skips"] == 1


def test_router_fails_over_on_dead_connection():
    seed = 23
    channel, conns, k = build_corpus(1, seed=seed)[0]

    async def main():
        servers, replica_set, router = await _serving_stack(2, seed)
        # A port nothing listens on: connection refused, not down-skip.
        probe = await asyncio.start_server(
            lambda r, w: None, "127.0.0.1", 0
        )
        dead_port = probe.sockets[0].getsockname()[1]
        probe.close()
        await probe.wait_closed()
        try:
            message = route_request("x", channel, conns, max_segments=k)
            key = RoutingRouter.request_key(parse_route_request(message))
            home = router.placement(key)[0]
            replica_set.set_endpoint(home, ("127.0.0.1", dead_port))
            async with AsyncRoutingClient(
                "127.0.0.1", router.port, timeout=30
            ) as client:
                result = await client.route(channel, conns, max_segments=k)
        finally:
            await _teardown(servers, router)
        return home, result, router.metrics_snapshot()["counters"]

    home, result, counters = asyncio.run(main())
    assert result.status == STATUS_OK
    assert counters["serve.router.failover_attempts"] == 1
    assert counters[f"serve.router.replica{home}.failed"] == 1


def test_router_spills_to_overloaded_only_when_all_replicas_refuse():
    seed = 29
    channel, conns, k = build_corpus(1, seed=seed)[0]

    async def main():
        servers, _, router = await _serving_stack(
            2, seed,
            config=RouterConfig(port=0, http_port=0, seed=seed,
                                replica_queue=1),
        )
        try:
            for admission in router.admissions:  # hold every slot
                assert admission.try_admit().admitted
            async with AsyncRoutingClient(
                "127.0.0.1", router.port, timeout=30
            ) as client:
                refused = await client.route(channel, conns, max_segments=k)
                for admission in router.admissions:
                    admission.release()
                admitted = await client.route(channel, conns, max_segments=k)
        finally:
            await _teardown(servers, router)
        return refused, admitted, router.metrics.snapshot()["counters"]

    refused, admitted, counters = asyncio.run(main())
    assert refused.status == STATUS_OVERLOADED
    assert refused.error_type == "AdmissionRejected"
    assert admitted.status == STATUS_OK
    assert counters["serve.router.spills"] == 2   # both replicas spilled
    assert counters["serve.router.refused"] == 1  # but one client refusal


def test_refused_probe_does_not_wedge_the_breaker():
    """A half-open probe that ends in an admission spill must release
    the probe slot: the next request is a fresh probe, not a permanent
    route-around of a healthy replica."""
    seed = 61
    channel, conns, k = build_corpus(1, seed=seed)[0]
    clock = FakeClock()

    async def main():
        servers, _, router = await _serving_stack(
            1, seed,
            config=RouterConfig(port=0, http_port=0, seed=seed,
                                failure_threshold=1, breaker_reset_s=5.0,
                                replica_queue=1),
            clock=clock,
        )
        try:
            breaker = router.breakers[0]
            breaker.record_failure()            # open
            clock.advance(5.0)                  # expires to half-open
            assert router.admissions[0].try_admit().admitted  # hold the slot
            async with AsyncRoutingClient(
                "127.0.0.1", router.port, timeout=30
            ) as client:
                refused = await client.route(channel, conns, max_segments=k)
                router.admissions[0].release()
                ok = await client.route(channel, conns, max_segments=k)
            state = breaker.state
        finally:
            await _teardown(servers, router)
        return refused, ok, state

    refused, ok, state = asyncio.run(main())
    assert refused.status == STATUS_OVERLOADED
    assert ok.status == STATUS_OK      # the replacement probe went through
    assert state == BREAKER_CLOSED     # ... and closed the breaker


def test_router_drain_refuses_new_requests():
    seed = 31
    channel, conns, k = build_corpus(1, seed=seed)[0]

    async def main():
        servers, _, router = await _serving_stack(2, seed)
        try:
            async with AsyncRoutingClient(
                "127.0.0.1", router.port, timeout=30
            ) as client:
                before = await client.route(channel, conns, max_segments=k)
                router.request_drain()
                after = await client.route(channel, conns, max_segments=k)
        finally:
            await _teardown(servers, router)
        return before, after, router.metrics.snapshot()["counters"]

    before, after, counters = asyncio.run(main())
    assert before.status == STATUS_OK
    assert after.status == STATUS_OVERLOADED
    assert after.error == "router is draining"
    assert counters["serve.router.drain_refused"] == 1


def test_router_readyz_tracks_live_replicas():
    seed = 37

    async def main():
        servers, replica_set, router = await _serving_stack(2, seed)
        try:
            up = await _http_get(router.http_port, "/readyz")
            replica_set.set_down(0)
            replica_set.set_down(1)
            dark = await _http_get(router.http_port, "/readyz")
            replica_set.set_down(0, False)
            back = await _http_get(router.http_port, "/readyz")
        finally:
            await _teardown(servers, router)
        return up, dark, back

    up, dark, back = asyncio.run(main())
    assert up == (200, "ready\n")
    assert dark == (503, "no live replicas\n")
    assert back == (200, "ready\n")


async def _http_get(port, path):
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    writer.write(f"GET {path} HTTP/1.0\r\n\r\n".encode())
    await writer.drain()
    raw = await reader.read()
    writer.close()
    head, _, body = raw.decode().partition("\r\n\r\n")
    return int(head.split()[1]), body


def test_router_port_file(tmp_path):
    seed = 41
    port_file = str(tmp_path / "router.json")

    async def main():
        servers, _, router = await _serving_stack(
            1, seed,
            config=RouterConfig(port=0, http_port=0, seed=seed,
                                port_file=port_file),
        )
        try:
            with open(port_file, encoding="utf-8") as handle:
                ports = json.load(handle)
            assert ports["port"] == router.port
            assert ports["http_port"] == router.http_port
        finally:
            await _teardown(servers, router)

    asyncio.run(main())


def test_hedge_delay_fixed_and_adaptive():
    replica_set = StaticReplicaSet([("h", 1), ("h", 2)])
    fixed = RoutingRouter(
        replica_set, RouterConfig(hedge_ms=50.0)
    )
    assert fixed._hedge_delay() == pytest.approx(0.05)

    adaptive = RoutingRouter(
        replica_set,
        RouterConfig(hedge_percentile=0.9, hedge_min_samples=10),
    )
    assert adaptive._hedge_delay() is None  # not enough samples yet
    adaptive._latencies = [0.01 * (i + 1) for i in range(10)]
    delay = adaptive._hedge_delay()
    assert delay == pytest.approx(0.09)  # p90 of 10..100ms

    disabled = RoutingRouter(replica_set, RouterConfig())
    assert disabled._hedge_delay() is None

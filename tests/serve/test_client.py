"""Client SDK: sync wrapper, connect retries, transport failures."""

import asyncio
import threading

import pytest

from repro.core.errors import ServeError
from repro.engine.resilience.retry import RetryPolicy
from repro.serve import RoutingClient, RoutingServer, ServeConfig, STATUS_OK
from repro.serve.client import _parse_response
from repro.serve.loadgen import build_corpus

pytestmark = pytest.mark.serve


class ServerThread:
    """A live server on its own event loop, for exercising sync clients."""

    def __init__(self, config: ServeConfig) -> None:
        self.server = RoutingServer(config)
        self.loop = asyncio.new_event_loop()
        self._ready = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)

    def _run(self) -> None:
        asyncio.set_event_loop(self.loop)
        self.loop.run_until_complete(self.server.start())
        self._ready.set()
        self.loop.run_until_complete(self.server.serve_forever())
        self.loop.close()

    def __enter__(self) -> "ServerThread":
        self._thread.start()
        assert self._ready.wait(10), "server failed to start"
        return self

    def __exit__(self, *exc_info) -> None:
        try:
            self.loop.call_soon_threadsafe(self.server.request_drain)
        except RuntimeError:
            pass  # already drained (a test may trigger drain itself)
        self._thread.join(15)


def test_sync_client_routes_and_pings():
    corpus = build_corpus(3, seed=23)
    with ServerThread(ServeConfig(port=0, http_port=0, seed=23)) as st:
        with RoutingClient("127.0.0.1", st.server.port, timeout=30) as client:
            pong = client.ping()
            assert pong["pong"] is True
            for channel, conns, k in corpus:
                result = client.route(channel, conns, max_segments=k)
                assert result.status == STATUS_OK
                assert result.assignment is not None
                assert result.latency > 0
            stats = client.stats()
            assert stats["counters"]["serve.ok"] == len(corpus)


def test_sync_client_connect_retries_then_fails():
    policy = RetryPolicy(
        max_attempts=2, base_delay=0.01, max_delay=0.01, jitter=0.0
    )
    client = RoutingClient(
        "127.0.0.1", 1, timeout=1, connect_policy=policy
    )  # port 1: nothing listens there
    with pytest.raises(ServeError, match="cannot connect"):
        client.connect()


def test_sync_client_requires_connect():
    client = RoutingClient("127.0.0.1", 1)
    with pytest.raises(ServeError, match="not connected"):
        client.ping()


def test_async_client_connect_retries_then_fails():
    from repro.serve import AsyncRoutingClient

    policy = RetryPolicy(
        max_attempts=2, base_delay=0.01, max_delay=0.01, jitter=0.0
    )

    async def main():
        client = AsyncRoutingClient(
            "127.0.0.1", 1, timeout=1, connect_policy=policy
        )
        with pytest.raises(ServeError, match="cannot connect"):
            await client.connect()

    asyncio.run(main())


def test_async_client_pending_fail_on_server_close():
    corpus = build_corpus(1, seed=29)
    channel, conns, k = corpus[0]

    async def main():
        from repro.serve import AsyncRoutingClient

        server = RoutingServer(ServeConfig(
            port=0, http_port=0, seed=29, max_wait_ms=200.0, max_batch=64,
        ))
        await server.start()
        client = AsyncRoutingClient("127.0.0.1", server.port, timeout=10)
        await client.connect()
        # Drain while a request sits in the batch window; graceful drain
        # still answers it (flush-don't-drop).
        task = asyncio.ensure_future(
            client.route(channel, conns, max_segments=k)
        )
        await asyncio.sleep(0.05)
        await server.drain()
        result = await task
        await client.close()
        return result

    result = asyncio.run(main())
    assert result.status == STATUS_OK


def test_parse_response_maps_fields():
    result = _parse_response({
        "v": 1, "id": "r1", "status": "ok", "assignment": [1, 0],
        "algorithm": "greedy1", "cache_hit": True, "duration_ms": 1.5,
        "trace_id": "t",
    }, latency=0.25)
    assert result.ok
    assert result.assignment == [1, 0]
    assert result.cache_hit is True
    assert result.latency == 0.25
    assert result.trace_id == "t"

    failure = _parse_response({
        "v": 1, "id": "r2", "status": "shed",
        "error_type": "AdmissionRejected", "error": "full",
    }, latency=0.01)
    assert not failure.ok
    assert failure.assignment is None
    assert failure.error_type == "AdmissionRejected"


# ----------------------------------------------------------------------
# typed connection loss + idempotent resend
# ----------------------------------------------------------------------
class FlakyServer:
    """Accepts connections; kills the first N without ever answering."""

    def __init__(self, drop_first: int = 1) -> None:
        self.drop_first = drop_first
        self.connections = 0
        self._server = None

    async def _handle(self, reader, writer):
        self.connections += 1
        if self.connections <= self.drop_first:
            await reader.readline()  # swallow the request, then die
            writer.close()
            return
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                from repro.serve.protocol import decode, encode
                message = decode(line)
                writer.write(encode({
                    "v": 1, "id": message.get("id"), "status": "ok",
                    "pong": True,
                }))
                await writer.drain()
        except ConnectionError:
            pass
        finally:
            writer.close()

    async def __aenter__(self):
        self._server = await asyncio.start_server(
            self._handle, "127.0.0.1", 0
        )
        self.port = self._server.sockets[0].getsockname()[1]
        return self

    async def __aexit__(self, *exc_info):
        self._server.close()
        await self._server.wait_closed()


def test_async_client_resends_inflight_after_reconnect():
    from repro.serve import AsyncRoutingClient

    async def main():
        async with FlakyServer(drop_first=1) as flaky:
            async with AsyncRoutingClient(
                "127.0.0.1", flaky.port, timeout=10
            ) as client:
                # The first connection dies mid-request; the client must
                # reconnect and replay transparently (ops are idempotent).
                pong = await client.ping()
        return pong, flaky.connections

    pong, connections = asyncio.run(main())
    assert pong["pong"] is True
    assert connections == 2  # proof the request rode a second connection


def test_async_client_raises_typed_error_when_resend_disabled():
    from repro.core.errors import ConnectionLostError
    from repro.serve import AsyncRoutingClient

    async def main():
        async with FlakyServer(drop_first=1) as flaky:
            async with AsyncRoutingClient(
                "127.0.0.1", flaky.port, timeout=10,
                resend_on_reconnect=False,
            ) as client:
                with pytest.raises(ConnectionLostError):
                    await client.ping()

    asyncio.run(main())


def test_async_client_typed_error_when_reconnect_impossible():
    from repro.core.errors import ConnectionLostError
    from repro.serve import AsyncRoutingClient

    async def main():
        flaky = FlakyServer(drop_first=10)
        await flaky.__aenter__()
        client = AsyncRoutingClient(
            "127.0.0.1", flaky.port, timeout=10,
            connect_policy=RetryPolicy(
                max_attempts=2, base_delay=0.01, max_delay=0.01,
                jitter=0.0,
            ),
        )
        await client.connect()
        # Stop the listener: the established connection still dies
        # mid-request, and now the reconnect cannot land either — the
        # client must surface the typed original error, not a timeout.
        await flaky.__aexit__(None, None, None)
        with pytest.raises(ConnectionLostError):
            await client.ping()
        await client.close()

    asyncio.run(main())


def test_sync_client_connection_loss_is_typed():
    from repro.core.errors import ConnectionLostError

    with ServerThread(ServeConfig(port=0, http_port=0, seed=3)) as st:
        client = RoutingClient("127.0.0.1", st.server.port, timeout=5)
        client.connect()
        assert client.ping()["pong"] is True
        st.loop.call_soon_threadsafe(st.server.request_drain)
        # Wait for the server to drop the connection, then poke it.
        deadline = 50
        while deadline:
            try:
                client.ping()
            except ConnectionLostError:
                break
            except ServeError:
                pytest.fail("expected the typed ConnectionLostError")
            import time
            time.sleep(0.1)
            deadline -= 1
        else:
            pytest.fail("connection never dropped")
        client.close()

"""Exhaustive small-world cross-check.

Sweeps the enumerated instance family from ``conftest.all_small_instances``
(thousands of channel x connection-set combinations) and checks that the
DP, the exact search, and the typed DP agree with raw brute-force
assignment enumeration for unlimited, K=1, and K=2 routing.  This is the
heaviest single test in the suite and the strongest blanket guarantee
that the exact routers implement Definition 1 faithfully.
"""

import pytest

from repro.core.dp import route_dp
from repro.core.dp_types import route_dp_track_types
from repro.core.errors import RoutingInfeasibleError
from repro.core.exact import count_routings
from tests.conftest import all_small_instances, brute_force_routable


@pytest.mark.parametrize("k", [None, 1, 2])
def test_exhaustive_agreement(k):
    checked = 0
    for channel, conns in all_small_instances(max_m=2):
        expected = brute_force_routable(channel, conns, k)
        assert (count_routings(channel, conns, max_segments=k) > 0) == expected
        for router in (route_dp, route_dp_track_types):
            try:
                router(channel, conns, max_segments=k).validate(k)
                got = True
            except RoutingInfeasibleError:
                got = False
            assert got == expected, (channel.track_types(), list(conns), k)
        checked += 1
    assert checked > 700


def test_exhaustive_three_connections_unlimited():
    checked = 0
    for channel, conns in all_small_instances(
        breaks_options=[(), (3,)], max_m=3
    ):
        if len(conns) != 3:
            continue
        expected = brute_force_routable(channel, conns, None)
        try:
            route_dp(channel, conns).validate()
            got = True
        except RoutingInfeasibleError:
            got = False
        assert got == expected
        checked += 1
    assert checked > 400

#!/usr/bin/env python3
"""Timing closure: segmentation choice shows up on the critical path.

Routes the same placed netlist over two channel designs — a fully
segmented channel (maximum flexibility, a switch every column) and a
geometric multi-type design — and runs static timing analysis on both.
The designed channel wins on delay because its connections cross fewer
programmed switches and drag less slack capacitance: the paper's Fig. 2
trade-off, measured at chip level.

Run:  python examples/timing_closure.py
"""

from repro.core.channel import fully_segmented_channel
from repro.design.segmentation import geometric_segmentation
from repro.fpga import (
    DelayModel,
    FPGAArchitecture,
    analyze_timing,
    improve_placement,
    place_greedy,
    random_netlist,
    route_chip,
)


def build_and_time(name, channel_factory):
    arch = FPGAArchitecture(
        n_rows=3,
        cells_per_row=6,
        n_inputs=3,
        channel_factory=channel_factory,
        output_span=2,
    )
    netlist = random_netlist(18, 3, seed=11)
    placement = improve_placement(
        place_greedy(arch, netlist, seed=3), netlist, seed=4
    )
    chip = route_chip(arch, netlist, placement, max_segments=None)
    if not chip.ok:
        print(f"{name}: routing FAILED in channels {chip.failed_channels}")
        return None
    report = analyze_timing(chip, DelayModel(), cell_delay=1.0)
    print(f"{name}:")
    print(f"  {report.summary()}")
    return report


def main() -> None:
    designed = build_and_time(
        "geometric multi-type design",
        lambda n: geometric_segmentation(8, n, shortest=4, ratio=2.0, n_types=3),
    )
    fully = build_and_time(
        "fully segmented channel",
        lambda n: fully_segmented_channel(8, n),
    )
    if designed and fully:
        ratio = fully.critical_delay / designed.critical_delay
        print(
            f"\nfully-segmented critical path is {ratio:.2f}x the designed "
            f"channel's — the Fig. 2 switch-resistance penalty, at chip scale."
        )


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""FPGA flow: netlist -> placement -> routing -> bitstream -> delay.

The full channeled-FPGA story of the paper's Fig. 1: a random logic
netlist is placed onto rows of cells, each net is decomposed into
per-channel horizontal connections, every channel is routed with the
paper's algorithms under a 2-segment limit, the programmed switches are
extracted, and Elmore delays are reported.

Run:  python examples/fpga_flow.py
"""

from repro.design.segmentation import geometric_segmentation
from repro.fpga import (
    DelayModel,
    FPGAArchitecture,
    extract_bitstream,
    place_greedy,
    improve_placement,
    random_netlist,
    route_chip,
    routing_delay_profile,
)
from repro.viz import render_routing


def main() -> None:
    # A small die: 3 rows x 6 cells, 3-input cells, 4 routing channels.
    # Channels use a geometric multi-type segmentation (short tracks for
    # short nets, long tracks for long nets).
    arch = FPGAArchitecture(
        n_rows=3,
        cells_per_row=6,
        n_inputs=3,
        channel_factory=lambda n: geometric_segmentation(
            8, n, shortest=4, ratio=2.0, n_types=3
        ),
        output_span=2,
    )
    print(arch)

    netlist = random_netlist(18, 3, seed=7)
    print(f"netlist: {netlist.n_cells} cells, {netlist.n_nets} nets")

    placement = place_greedy(arch, netlist, seed=1)
    placement = improve_placement(placement, netlist, seed=2)
    print(
        "placement half-perimeter wirelength:",
        placement.total_half_perimeter(netlist),
    )

    chip = route_chip(arch, netlist, placement, max_segments=2)
    print()
    print(chip.summary())
    if not chip.ok:
        raise SystemExit("routing failed; try more tracks per channel")

    model = DelayModel()
    print("\nper-channel detail:")
    for result in chip.channels:
        routing = result.routing
        if routing is None or not len(routing.connections):
            continue
        bitstream = extract_bitstream(routing)
        mean_d, max_d, _ = routing_delay_profile(routing, model)
        print(
            f"\nchannel {result.channel_index}: "
            f"{bitstream.n_cross()} cross + {bitstream.n_track()} track "
            f"switches programmed; Elmore delay mean {mean_d:.2f} / "
            f"max {max_d:.2f}"
        )
        print(render_routing(routing))


if __name__ == "__main__":
    main()

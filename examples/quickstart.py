#!/usr/bin/env python3
"""Quickstart: define a segmented channel, route connections, inspect.

Covers the library's core loop in ~40 lines:

1. build a channel (tracks divided into segments by switches);
2. describe the connections to route;
3. call :func:`repro.route` (Problems 1/2/3 of the paper);
4. validate, render, and export the result.

Run:  python examples/quickstart.py
"""

from repro import (
    ConnectionSet,
    channel_from_breaks,
    occupied_length_weight,
    route,
)
from repro.io import routing_report
from repro.viz import render_channel, render_connections, render_routing


def main() -> None:
    # A 3-track channel over 9 columns — the paper's Fig. 3 geometry.
    # Track 1 has switches after columns 2 and 6; track 3 after column 5.
    channel = channel_from_breaks(
        9,
        [
            (2, 6),
            (3, 6),
            (5,),
        ],
        name="quickstart",
    )

    # Five two-pin connections, given as (left, right) column spans.
    connections = ConnectionSet.from_spans(
        [(1, 3), (2, 5), (4, 6), (6, 8), (7, 9)]
    )

    print("The connections:")
    print(render_connections(connections, channel.n_columns))
    print("\nThe channel (o = programmable switch):")
    print(render_channel(channel))

    # Problem 2 with K=1: each connection must fit a single segment.
    routing = route(channel, connections, max_segments=1)
    routing.validate(max_segments=1)
    print("\n1-segment routing (= programmed segments, * = joined switch):")
    print(render_routing(routing))

    # Problem 3: minimize total occupied wire length.
    weight = occupied_length_weight(channel)
    optimal = route(channel, connections, max_segments=1, weight=weight)
    print("\nOptimal (minimum occupied length) routing report:")
    print(routing_report(optimal, weight))


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Paper tour: every figure of the paper, regenerated in one run.

Walks Figs. 2, 3, 4, 5(Example 1), 7, 8 and the Section IV-B frontier
(Fig. 9) in order, printing the reproduced artifact for each with the
paper's claim alongside.  The quantitative experiments (LP60, DAC90,
bounds) live in `benchmarks/`; this script is the qualitative gallery.

Run:  python examples/paper_tour.py
"""

from repro import (
    RoutingInfeasibleError,
    build_unlimited_instance,
    density,
    matching_from_routing,
    route_dp,
    route_dp_with_stats,
    route_generalized,
    route_one_segment_greedy,
    route_one_segment_matching,
    route_two_segment_tracks_greedy,
    routing_from_matching,
    solve_nmts,
)
from repro.core.left_edge import route_left_edge_unconstrained
from repro.core.routing import occupied_length_weight
from repro.design.per_instance import segmentation_for_instance
from repro.generators.paper_examples import (
    example1_nmts,
    fig2_connections,
    fig3_channel,
    fig3_connections,
    fig4_channel,
    fig4_connections,
    fig8_channel,
    fig8_connections,
)
from repro.viz.render import (
    render_channel,
    render_generalized_routing,
    render_routing,
)


def banner(title: str) -> None:
    print("\n" + "=" * 72)
    print(title)
    print("=" * 72)


def fig2() -> None:
    banner("Fig. 2 — why segmented channels: the same nets, four ways")
    conns = fig2_connections()
    d = density(conns)
    unconstrained = route_left_edge_unconstrained(conns, n_columns=16)
    print(f"(b) mask-programmed left edge: {unconstrained.channel.n_tracks} "
          f"tracks (= density {d})")
    designed = segmentation_for_instance(conns, 16)
    r = route_one_segment_greedy(designed, conns)
    print(f"(e) designed segmentation: {designed.n_tracks} tracks, "
          f"{designed.n_switches} switches, every connection 1 segment:")
    print(render_routing(r))


def fig3_and_9() -> None:
    banner("Fig. 3 — the running example; Fig. 9 — its frontier")
    ch, cs = fig3_channel(), fig3_connections()
    print(render_channel(ch))
    r = route_one_segment_greedy(ch, cs)
    print("\n1-segment greedy (c1->s21, c2->s31 as printed):")
    print(render_routing(r))
    blocked = [0] * 3
    for i in range(3):
        blocked[r.assignment[i]] = ch.segment_end_at(
            r.assignment[i], cs[i].right
        )
    frontier = [max(b + 1, cs[3].left) for b in blocked]
    print(f"\nfrontier after c1..c3 relative to left(c4): {frontier} "
          f"(Fig. 9 prints x = [7, 6, 6])")
    _, stats = route_dp_with_stats(ch, cs)
    print(f"assignment graph (Fig. 10): levels of width "
          f"{list(stats.nodes_per_level)}")


def fig4() -> None:
    banner("Fig. 4 — when a connection must change tracks")
    ch, cs = fig4_channel(), fig4_connections()
    try:
        route_dp(ch, cs)
    except RoutingInfeasibleError:
        print("track-per-connection routing: infeasible (DP proof)")
    g = route_generalized(ch, cs)
    print(render_generalized_routing(g))


def fig5() -> None:
    banner("Fig. 5 / Example 1 — NP-completeness as executable code")
    nmts = example1_nmts()
    q = build_unlimited_instance(nmts)
    print(f"Q: T={q.channel.n_tracks}, N={q.channel.n_columns}, "
          f"M={len(q.connections)}")
    alpha, beta = solve_nmts(nmts)
    routing = routing_from_matching(q, alpha, beta)
    a2, b2 = matching_from_routing(q, routing)
    pairs = ", ".join(
        f"x{a2[i] + 1}+y{b2[i] + 1}={nmts.zs[i]}" for i in range(3)
    )
    print(f"matching -> routing -> matching round trip: {pairs}")


def fig7() -> None:
    banner("Fig. 7 — optimal 1-segment routing via matching")
    ch, cs = fig3_channel(), fig3_connections()
    w = occupied_length_weight(ch)
    optimal = route_one_segment_matching(ch, cs, weight=w)
    greedy = route_one_segment_greedy(ch, cs)
    print(f"greedy weight {greedy.total_weight(w):g} -> "
          f"matching optimum {optimal.total_weight(w):g}")


def fig8() -> None:
    banner("Fig. 8 — the two-segment pool greedy")
    ch, cs = fig8_channel(), fig8_connections()
    r = route_two_segment_tracks_greedy(ch, cs)
    print(render_routing(r))
    print("(c2 pooled, then flushed onto the last unoccupied track)")


def main() -> None:
    fig2()
    fig3_and_9()
    fig4()
    fig5()
    fig7()
    fig8()
    print("\nAll figures regenerated. Quantitative experiments: "
          "pytest benchmarks/ --benchmark-only")


if __name__ == "__main__":
    main()

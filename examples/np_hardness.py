#!/usr/bin/env python3
"""NP-hardness, executed: the Theorem-1 reduction as working code.

Builds the paper's Example 1 (Fig. 5) — the segmented channel routing
instance Q encoding the numerical matching problem x=(2,5,8),
y=(9,11,12), z=(11,17,19) — routes it, and reads the matching back out
of the routing.  Then perturbs z to an unsolvable instance and watches
the router prove Q unroutable.

Run:  python examples/np_hardness.py
"""

from repro import (
    NMTSInstance,
    RoutingInfeasibleError,
    build_unlimited_instance,
    matching_from_routing,
    normalize_nmts,
    route_exact,
    routing_from_matching,
    solve_nmts,
)
from repro.generators.paper_examples import example1_nmts


def main() -> None:
    inst = example1_nmts()
    print(f"NMTS instance: x={inst.xs}, y={inst.ys}, z={inst.zs}")

    sol = solve_nmts(inst)
    assert sol is not None
    alpha, beta = sol
    print(
        "numerical matching found:",
        ", ".join(
            f"x{alpha[i] + 1}+y{beta[i] + 1}={inst.zs[i]}"
            for i in range(inst.n)
        ),
    )

    q = build_unlimited_instance(inst)
    print(
        f"\nreduction instance Q: {q.channel.n_tracks} tracks, "
        f"{q.channel.n_columns} columns, {len(q.connections)} connections"
    )

    routing = routing_from_matching(q, alpha, beta)
    routing.validate()
    print("Lemma 1: built a valid routing of Q from the matching.")

    alpha2, beta2 = matching_from_routing(q, routing)
    print(
        "Lemma 2: read a matching back out of the routing: "
        f"alpha={tuple(a + 1 for a in alpha2)}, "
        f"beta={tuple(b + 1 for b in beta2)}"
    )

    # Now the unsolvable twin: same x, y, rebalanced z.
    bad = NMTSInstance((2, 5, 8), (9, 11, 12), (12, 16, 19))
    assert solve_nmts(bad) is None
    norm, _, _ = normalize_nmts(bad)
    q_bad = build_unlimited_instance(norm)
    print(f"\nperturbed z={bad.zs}: no numerical matching exists.")
    try:
        route_exact(q_bad.channel, q_bad.connections)
    except RoutingInfeasibleError:
        print(
            "exact router proves Q unroutable — routing Q is exactly as "
            "hard as numerical matching (Theorem 1)."
        )


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Channel design: pick a segmentation for your traffic, then prove it.

The workflow a channeled-FPGA architect runs (the DAC 1990 experiments):

1. model the expected channel traffic (Poisson starts, geometric lengths);
2. propose candidate segmentations (uniform / staggered / geometric /
   traffic-matched);
3. Monte-Carlo each design: routing probability vs track count, and the
   track overhead over the freely-customized (mask programmed) baseline.

Run:  python examples/channel_design.py
"""

from repro.analysis.stats import format_table, summarize
from repro.design import (
    TrafficModel,
    design_for_lengths,
    geometric_segmentation,
    routing_probability,
    sample_connections,
    staggered_uniform_segmentation,
    track_overhead_vs_unconstrained,
    uniform_segmentation,
)

N_COLUMNS = 48
TRAFFIC = TrafficModel(lam=0.5, mean_length=6)


def main() -> None:
    print(
        f"traffic model: lam={TRAFFIC.lam}, mean length="
        f"{TRAFFIC.mean_length} -> expected density "
        f"{TRAFFIC.expected_density:g}"
    )

    # A traffic-matched design needs a length sample; draw one.
    sample = sample_connections(TRAFFIC, N_COLUMNS, seed=99)
    lengths = [c.length for c in sample]

    designs = {
        "uniform(6)": lambda T, N: uniform_segmentation(T, N, 6),
        "staggered(6)": lambda T, N: staggered_uniform_segmentation(T, N, 6),
        "geometric": lambda T, N: geometric_segmentation(T, N, 4, 2.0, 3),
        "matched": lambda T, N: design_for_lengths(T, N, lengths, 3),
    }

    # Routing probability vs track count (K=2), common random numbers.
    tracks = (4, 6, 8, 10, 12)
    rows = []
    for name, designer in designs.items():
        curve = routing_probability(
            designer, tracks, TRAFFIC, N_COLUMNS, n_trials=12,
            max_segments=2, seed=5,
        )
        rows.append([name] + [f"{r.probability:.2f}" for r in curve])
    print("\nrouting probability vs tracks (K=2):")
    print(format_table(["design"] + [f"T={t}" for t in tracks], rows))

    # Track overhead vs the unconstrained baseline.
    rows = []
    for name, designer in designs.items():
        data = track_overhead_vs_unconstrained(
            designer, TRAFFIC, N_COLUMNS, n_trials=10,
            max_segments=2, seed=6,
        )
        s = summarize([o for _, _, o in data])
        rows.append((name, f"{s.mean:.2f}", int(s.minimum), int(s.maximum)))
    print("\nextra tracks vs freely-customized density (K=2):")
    print(format_table(["design", "mean", "min", "max"], rows))
    print(
        "\nThe paper's claim: a well-designed segmented channel needs only "
        "a few tracks more than a freely customized one."
    )


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Engineering change orders: incremental routing with bounded rip-up.

A routed channel receives a stream of late netlist edits — inserts and
deletes.  The incremental router realizes each insert with the cheapest
sufficient effort: a direct assignment when free segments exist, a
bounded rip-up-and-reroute when they don't, and a full exact re-route
only as a last resort.  Deletions always succeed and free capacity.

Run:  python examples/eco_repair.py
"""

from repro import Connection, IncrementalRouter, RoutingInfeasibleError
from repro.core.channel import channel_from_breaks
from repro.viz import render_routing


def main() -> None:
    channel = channel_from_breaks(
        16,
        [
            (4, 8, 12),
            (6, 10),
            (8,),
        ],
        name="eco",
    )
    session = IncrementalRouter(channel, max_segments=2, max_rip_up=2)

    edits = [
        ("insert", Connection(1, 4, "clk")),
        ("insert", Connection(5, 8, "rst")),
        ("insert", Connection(2, 6, "d0")),
        ("insert", Connection(9, 12, "d1")),
        ("insert", Connection(7, 10, "d2")),
        ("insert", Connection(13, 16, "q0")),
        ("remove", Connection(5, 8, "rst")),
        ("insert", Connection(3, 8, "scan")),
        ("insert", Connection(11, 16, "q1")),
    ]

    for op, conn in edits:
        if op == "insert":
            try:
                session.insert(conn)
                print(f"+ {conn.name:<5} [{conn.left:>2},{conn.right:>2}]  ok "
                      f"({len(session)} routed)")
            except RoutingInfeasibleError as exc:
                print(f"+ {conn.name:<5} REJECTED: {exc}")
        else:
            session.remove(conn)
            print(f"- {conn.name:<5} removed ({len(session)} routed)")

    print("\nfinal channel state:")
    print(render_routing(session.routing))
    session.routing.validate(max_segments=2)
    print("\nfinal routing validated (K <= 2).")


if __name__ == "__main__":
    main()

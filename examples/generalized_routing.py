#!/usr/bin/env python3
"""Generalized routing: when a connection must change tracks (Fig. 4).

Shows an instance (the paper's Fig. 4 reconstruction) where no
track-per-connection routing exists, routes it generalized (Problem 4),
then re-routes under the paper's hardware-motivated restrictions:
track changes only at chosen columns, and a per-connection change budget.

Run:  python examples/generalized_routing.py
"""

from repro import RoutingInfeasibleError, route_dp, route_generalized
from repro.generators.paper_examples import fig4_channel, fig4_connections
from repro.viz import render_channel, render_connections


def describe(g, cs) -> None:
    for i, c in enumerate(cs):
        parts = g.pieces[i]
        if len(parts) == 1:
            t, l, r = parts[0]
            print(f"  {c.name}: track {t + 1} over [{l},{r}]")
        else:
            route = " -> ".join(
                f"t{t + 1}[{l},{r}]" for t, l, r in parts
            )
            print(f"  {c.name}: CHANGES TRACKS: {route}")


def main() -> None:
    channel, conns = fig4_channel(), fig4_connections()
    print("the channel:")
    print(render_channel(channel))
    print("\nthe connections:")
    print(render_connections(conns, channel.n_columns))

    print("\ntrack-per-connection routing (Problems 1-3):")
    try:
        route_dp(channel, conns)
        print("  ...found (unexpected!)")
    except RoutingInfeasibleError:
        print("  infeasible — proved by the assignment-graph DP.")

    print("\ngeneralized routing (Problem 4):")
    g = route_generalized(channel, conns)
    g.validate()
    describe(g, conns)

    print("\nwith track changes allowed only at column 7:")
    g7 = route_generalized(channel, conns, allowed_change_columns=[7])
    g7.validate(allowed_change_columns={7})
    describe(g7, conns)

    print("\nwith at most one track change per connection:")
    g1 = route_generalized(channel, conns, max_track_changes=1)
    g1.validate()
    describe(g1, conns)


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Profile the routing hot paths: cProfile top-N per algorithm.

Routes a mid-size random corpus through each algorithm under cProfile
and prints the top functions by cumulative time — the view that
motivated the packed-frontier kernels and the shared geometry tables
(see docs/PERFORMANCE.md).  Use it before and after touching an inner
loop to see where the time actually went.

Usage:
    python tools/profile_hotpaths.py                    # all algorithms
    python tools/profile_hotpaths.py --algorithm dp
    python tools/profile_hotpaths.py --top 15 --scale 2
    REPRO_KERNELS=reference python tools/profile_hotpaths.py --algorithm dp
"""

from __future__ import annotations

import argparse
import cProfile
import io
import pstats
import sys
from pathlib import Path

_REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(_REPO_ROOT / "src"))

#: Per-algorithm workloads: (label, K, corpus shape overrides).  Greedy and
#: left-edge are near-free, so they get proportionally more instances.
PROFILES = {
    "dp": {"k": None, "tracks": 6, "columns": 80, "conns": 24, "count": 30},
    "dp_weighted": {"k": None, "tracks": 6, "columns": 80, "conns": 24,
                    "count": 30, "weight": True},
    "greedy1": {"k": 1, "tracks": 8, "columns": 80, "conns": 24, "count": 200},
    "exact": {"k": None, "tracks": 5, "columns": 60, "conns": 14, "count": 30},
    "left_edge": {"k": None, "tracks": 8, "columns": 80, "conns": 24,
                  "count": 200, "identical": True},
}


def _build_corpus(spec: dict, scale: int) -> list[tuple]:
    from repro.core.channel import identical_channel
    from repro.generators.random_instances import (
        random_channel,
        random_feasible_instance,
    )

    corpus = []
    for s in range(spec["count"] * scale):
        if spec.get("identical"):
            # Evenly segmented identical tracks; segment length ~ mean 5.
            channel = identical_channel(
                spec["tracks"], spec["columns"],
                list(range(5, spec["columns"], 5)),
            )
        else:
            channel = random_channel(
                spec["tracks"], spec["columns"], 5.0, seed=1000 + s
            )
        conns = random_feasible_instance(
            channel, spec["conns"], seed=2000 + s, max_segments=spec["k"]
        )
        corpus.append((channel, conns))
    return corpus


def _route_corpus(name: str, spec: dict, corpus: list[tuple]) -> None:
    from repro.core.errors import RoutingInfeasibleError
    from repro.core.routing import occupied_length_weight

    if name.startswith("dp"):
        from repro.core.dp import route_dp as solver
    elif name == "greedy1":
        from repro.core.greedy import route_one_segment_greedy

        solver = lambda ch, cs, **kw: route_one_segment_greedy(ch, cs)
    elif name == "exact":
        from repro.core.exact import route_exact as solver
    elif name == "left_edge":
        from repro.core.left_edge import route_left_edge_identical as solver
    else:
        raise SystemExit(f"unknown algorithm {name!r}")

    for channel, conns in corpus:
        kwargs = {}
        if name.startswith("dp"):
            kwargs["max_segments"] = spec["k"]
            if spec.get("weight"):
                kwargs["weight"] = occupied_length_weight(channel)
        try:
            solver(channel, conns, **kwargs)
        except RoutingInfeasibleError:
            pass


def profile_algorithm(name: str, top: int, scale: int) -> str:
    spec = PROFILES[name]
    corpus = _build_corpus(spec, scale)
    profiler = cProfile.Profile()
    profiler.enable()
    _route_corpus(name, spec, corpus)
    profiler.disable()
    out = io.StringIO()
    stats = pstats.Stats(profiler, stream=out)
    stats.strip_dirs().sort_stats("cumulative").print_stats(top)
    return out.getvalue()


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--algorithm", choices=sorted(PROFILES), default=None,
        help="profile one algorithm (default: all)",
    )
    parser.add_argument(
        "--top", type=int, default=12,
        help="functions to show per algorithm (default: 12)",
    )
    parser.add_argument(
        "--scale", type=int, default=1,
        help="corpus size multiplier for longer, steadier profiles",
    )
    args = parser.parse_args(argv)

    from repro.core.kernels import active_kernel

    names = [args.algorithm] if args.algorithm else sorted(PROFILES)
    for name in names:
        print(f"=== {name} (REPRO_KERNELS={active_kernel()}) ===")
        print(profile_algorithm(name, args.top, args.scale))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

#!/usr/bin/env python3
"""Profile the routing hot paths: cProfile top-N per algorithm.

Routes a mid-size random corpus through each algorithm under cProfile
and prints the top functions by cumulative time — the view that
motivated the packed-frontier kernels and the shared geometry tables
(see docs/PERFORMANCE.md).  Use it before and after touching an inner
loop to see where the time actually went.

``--serde`` profiles the wire layer instead of the solvers: it
round-trips the same request/response corpus through both framings
(NDJSON v1 via :func:`repro.serve.protocol.encode`/``decode`` and
binary v2 via :class:`repro.serve.wire.WireCodec`) and prints per-op
timings plus bytes on the wire — the view that motivated the
length-prefixed v2 framing.

Usage:
    python tools/profile_hotpaths.py                    # all algorithms
    python tools/profile_hotpaths.py --algorithm dp
    python tools/profile_hotpaths.py --top 15 --scale 2
    python tools/profile_hotpaths.py --serde --scale 4
    REPRO_KERNELS=reference python tools/profile_hotpaths.py --algorithm dp
"""

from __future__ import annotations

import argparse
import cProfile
import io
import pstats
import sys
from pathlib import Path

_REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(_REPO_ROOT / "src"))

#: Per-algorithm workloads: (label, K, corpus shape overrides).  Greedy and
#: left-edge are near-free, so they get proportionally more instances.
PROFILES = {
    "dp": {"k": None, "tracks": 6, "columns": 80, "conns": 24, "count": 30},
    "dp_weighted": {"k": None, "tracks": 6, "columns": 80, "conns": 24,
                    "count": 30, "weight": True},
    "greedy1": {"k": 1, "tracks": 8, "columns": 80, "conns": 24, "count": 200},
    "exact": {"k": None, "tracks": 5, "columns": 60, "conns": 14, "count": 30},
    "left_edge": {"k": None, "tracks": 8, "columns": 80, "conns": 24,
                  "count": 200, "identical": True},
}


def _build_corpus(spec: dict, scale: int) -> list[tuple]:
    from repro.core.channel import identical_channel
    from repro.generators.random_instances import (
        random_channel,
        random_feasible_instance,
    )

    corpus = []
    for s in range(spec["count"] * scale):
        if spec.get("identical"):
            # Evenly segmented identical tracks; segment length ~ mean 5.
            channel = identical_channel(
                spec["tracks"], spec["columns"],
                list(range(5, spec["columns"], 5)),
            )
        else:
            channel = random_channel(
                spec["tracks"], spec["columns"], 5.0, seed=1000 + s
            )
        conns = random_feasible_instance(
            channel, spec["conns"], seed=2000 + s, max_segments=spec["k"]
        )
        corpus.append((channel, conns))
    return corpus


def _route_corpus(name: str, spec: dict, corpus: list[tuple]) -> None:
    from repro.core.errors import RoutingInfeasibleError
    from repro.core.routing import occupied_length_weight

    if name.startswith("dp"):
        from repro.core.dp import route_dp as solver
    elif name == "greedy1":
        from repro.core.greedy import route_one_segment_greedy

        solver = lambda ch, cs, **kw: route_one_segment_greedy(ch, cs)
    elif name == "exact":
        from repro.core.exact import route_exact as solver
    elif name == "left_edge":
        from repro.core.left_edge import route_left_edge_identical as solver
    else:
        raise SystemExit(f"unknown algorithm {name!r}")

    for channel, conns in corpus:
        kwargs = {}
        if name.startswith("dp"):
            kwargs["max_segments"] = spec["k"]
            if spec.get("weight"):
                kwargs["weight"] = occupied_length_weight(channel)
        try:
            solver(channel, conns, **kwargs)
        except RoutingInfeasibleError:
            pass


def profile_serde(scale: int, repeats: int = 50) -> str:
    """Time both wire framings over one corpus of requests/responses.

    Encodes and decodes every message ``repeats`` times per framing and
    reports per-message microseconds plus bytes on the wire, requests
    and responses separately — apples-to-apples because both framings
    carry exactly the same corpus.
    """
    import time

    from repro.serve.protocol import (
        decode,
        ok_response,
        parse_route_request,
        route_request,
    )
    from repro.serve.wire import (
        HEADER_SIZE,
        WireCodec,
        decode_ok_frame,
        decode_route_frame,
    )

    spec = {"k": 2, "tracks": 12, "columns": 24, "conns": 8, "count": 16}
    corpus = _build_corpus(spec, scale)

    class _Result:
        """Shaped like an engine ``BatchResult`` for ``ok_response``."""

        class _Routing:
            def __init__(self, assignment):
                self.assignment = assignment

        def __init__(self, n_tracks, n_conns):
            self.routing = self._Routing([i % n_tracks for i in range(n_conns)])
            self.algorithm = "dp"
            self.duration = 0.0123
            self.cache_hit = True
            self.fallbacks = 0
            self.trace_id = ""

    requests = [
        route_request(f"p{i}", channel, conns, max_segments=spec["k"])
        for i, (channel, conns) in enumerate(corpus)
    ]
    responses = [
        ok_response(f"p{i}", _Result(spec["tracks"], len(conns)))
        for i, (_, conns) in enumerate(corpus)
    ]

    def timed(fn, items):
        started = time.perf_counter()
        for _ in range(repeats):
            for item in items:
                fn(item)
        per_msg = (time.perf_counter() - started) / (repeats * len(items))
        return per_msg * 1e6  # µs

    codec = WireCodec()
    rows = []

    # --- v1: NDJSON lines both directions.
    v1_req = [bytes(codec.encode_line(m)) for m in requests]
    v1_resp = [bytes(codec.encode_line(m)) for m in responses]
    rows.append((
        "v1 request", timed(codec.encode_line, requests),
        timed(decode, v1_req),
        timed(lambda line: parse_route_request(decode(line)), v1_req),
        sum(map(len, v1_req)) / len(v1_req),
    ))
    rows.append((
        "v1 response", timed(codec.encode_line, responses),
        timed(decode, v1_resp), None,
        sum(map(len, v1_resp)) / len(v1_resp),
    ))

    # --- v2: packed binary frames (encode via the route/ok packers;
    # decode on the frame bodies, header stripped).
    def encode_route(pair):
        i, (channel, conns) = pair
        return codec.encode_route(
            f"p{i}", channel, conns, max_segments=spec["k"],
            weight=None, algorithm="auto", deadline_ms=None,
            trace_id="", trace_parent="",
        )

    indexed = list(enumerate(corpus))
    v2_req = [bytes(encode_route(p))[HEADER_SIZE:] for p in indexed]
    v2_resp = [bytes(codec.encode_ok(m))[HEADER_SIZE:] for m in responses]
    rows.append((
        "v2 request", timed(encode_route, indexed),
        timed(decode_route_frame, v2_req),
        timed(decode_route_frame, v2_req),
        HEADER_SIZE + sum(map(len, v2_req)) / len(v2_req),
    ))
    rows.append((
        "v2 response", timed(codec.encode_ok, responses),
        timed(decode_ok_frame, v2_resp), None,
        HEADER_SIZE + sum(map(len, v2_resp)) / len(v2_resp),
    ))

    out = io.StringIO()
    print(
        f"{len(corpus)} messages x {repeats} repeats "
        "(decode+parse = decode through to a typed RouteRequest)",
        file=out,
    )
    print(
        f"{'framing':<14}{'encode µs':>12}{'decode µs':>12}"
        f"{'decode+parse µs':>18}{'bytes/msg':>12}", file=out,
    )
    for label, enc, dec, full, nbytes in rows:
        full_s = f"{full:18.2f}" if full is not None else f"{'-':>18}"
        print(
            f"{label:<14}{enc:12.2f}{dec:12.2f}{full_s}{nbytes:12.1f}",
            file=out,
        )
    return out.getvalue()


def profile_algorithm(name: str, top: int, scale: int) -> str:
    spec = PROFILES[name]
    corpus = _build_corpus(spec, scale)
    profiler = cProfile.Profile()
    profiler.enable()
    _route_corpus(name, spec, corpus)
    profiler.disable()
    out = io.StringIO()
    stats = pstats.Stats(profiler, stream=out)
    stats.strip_dirs().sort_stats("cumulative").print_stats(top)
    return out.getvalue()


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--algorithm", choices=sorted(PROFILES), default=None,
        help="profile one algorithm (default: all)",
    )
    parser.add_argument(
        "--top", type=int, default=12,
        help="functions to show per algorithm (default: 12)",
    )
    parser.add_argument(
        "--scale", type=int, default=1,
        help="corpus size multiplier for longer, steadier profiles",
    )
    parser.add_argument(
        "--serde", action="store_true",
        help="profile the wire layer (NDJSON v1 vs binary v2) instead "
             "of the solvers",
    )
    args = parser.parse_args(argv)

    if args.serde:
        print("=== serde (NDJSON v1 vs binary v2) ===")
        print(profile_serde(args.scale))
        return 0

    from repro.core.kernels import active_kernel

    names = [args.algorithm] if args.algorithm else sorted(PROFILES)
    for name in names:
        print(f"=== {name} (REPRO_KERNELS={active_kernel()}) ===")
        print(profile_algorithm(name, args.top, args.scale))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

#!/usr/bin/env python3
"""Analyze a JSONL trace written by ``segroute --trace``.

Thin CLI over :mod:`repro.obs.report`: validates every span's schema and
every trace's parent/child link structure, then prints the aggregate
summary — per-phase time breakdown, cache-hit/fallback/retry/error
rates, and the slowest requests.

Exit status is non-zero when the file fails validation, or when
``--min-spans-per-request`` is given and some trace has fewer spans than
required (CI's trace-smoke job uses this to prove tracing actually
instrumented each request).

Usage:
    python tools/trace_report.py trace.jsonl
    python tools/trace_report.py trace.jsonl --json
    python tools/trace_report.py trace.jsonl --min-spans-per-request 2
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

_REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(_REPO_ROOT / "src"))

from repro.obs.report import (  # noqa: E402
    TraceError,
    build_traces,
    load_spans,
    render_summary,
    summarize,
)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="validate and summarize a segroute JSONL trace file"
    )
    parser.add_argument("trace", help="JSONL trace file (segroute --trace)")
    parser.add_argument(
        "--json", action="store_true",
        help="emit the summary as JSON instead of text",
    )
    parser.add_argument(
        "--min-spans-per-request", type=int, default=None, metavar="N",
        help="fail unless every trace holds at least N spans",
    )
    args = parser.parse_args(argv)

    try:
        spans = load_spans(args.trace)
        traces = build_traces(spans)
    except (OSError, TraceError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1

    failures = 0
    if args.min_spans_per_request is not None:
        for trace in traces.values():
            if len(trace.spans) < args.min_spans_per_request:
                print(
                    f"error: trace {trace.trace_id} has only "
                    f"{len(trace.spans)} span(s), expected >= "
                    f"{args.min_spans_per_request}",
                    file=sys.stderr,
                )
                failures += 1

    summary = summarize(traces)
    if args.json:
        print(json.dumps(summary, indent=2, sort_keys=True))
    else:
        sys.stdout.write(render_summary(summary))
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())

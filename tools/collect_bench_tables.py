#!/usr/bin/env python3
"""Regenerate the experiment tables embedded in EXPERIMENTS.md.

Runs the benchmark suite (or consumes an existing log) and extracts every
experiment report block — the lines each bench prints through its `show`
fixture — into one text file for easy diffing against EXPERIMENTS.md.

Usage:
    python tools/collect_bench_tables.py                 # runs the benches
    python tools/collect_bench_tables.py --from-log F    # parse existing log
    python tools/collect_bench_tables.py -o tables.txt
"""

from __future__ import annotations

import argparse
import re
import subprocess
import sys
from pathlib import Path

#: Experiment report headers, as printed by the benches.
HEADER = re.compile(
    r"^(FIG|NPC|THM|LP60|DAC90|DELAY|SCALE|ABLATION|ANALYTIC|FAMILIES|"
    r"ECO|OPEN|DECOMP)"
)
#: Lines that terminate a report block.
TERMINATOR = re.compile(r"^\.+\s*(\[|$)|benchmark: \d+ tests")


def extract_tables(text: str) -> str:
    """Pull the report blocks out of a pytest-benchmark log."""
    out: list[str] = []
    active = False
    for line in text.splitlines():
        if HEADER.match(line):
            if out:
                out.append("")
            active = True
        elif active and TERMINATOR.search(line):
            active = False
            continue
        if active:
            out.append(line.rstrip())
    return "\n".join(out) + "\n"


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--from-log", help="parse an existing bench log")
    parser.add_argument(
        "-o", "--output", default="bench_tables.txt",
        help="where to write the extracted tables",
    )
    args = parser.parse_args(argv)
    if args.from_log:
        text = Path(args.from_log).read_text()
    else:
        proc = subprocess.run(
            [sys.executable, "-m", "pytest", "benchmarks/", "--benchmark-only"],
            capture_output=True, text=True,
            cwd=Path(__file__).resolve().parent.parent,
        )
        text = proc.stdout + proc.stderr
        if proc.returncode != 0:
            print("warning: bench run exited nonzero", file=sys.stderr)
    tables = extract_tables(text)
    Path(args.output).write_text(tables)
    print(f"wrote {args.output} ({tables.count(chr(10))} lines)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

#!/usr/bin/env python3
"""Regenerate the experiment tables embedded in EXPERIMENTS.md.

Runs the benchmark suite (or consumes an existing log) and extracts every
experiment report block — the lines each bench prints through its `show`
fixture — into one text file for easy diffing against EXPERIMENTS.md.

Also runs a small routing-engine benchmark and writes a machine-readable
``BENCH_engine.json`` (instance size, algorithm, wall-time, cache-hit
rate, active DP kernel) so the performance trajectory of
:mod:`repro.engine` is trackable across PRs, and folds in the
reference-vs-packed kernel timings from
:mod:`repro.analysis.kernel_bench` (also available standalone as
``segroute bench``).

Usage:
    python tools/collect_bench_tables.py                 # runs the benches
    python tools/collect_bench_tables.py --from-log F    # parse existing log
    python tools/collect_bench_tables.py -o tables.txt
    python tools/collect_bench_tables.py --engine-only   # just BENCH_engine.json
    python tools/collect_bench_tables.py --no-engine     # skip the engine bench
"""

from __future__ import annotations

import argparse
import json
import os
import re
import subprocess
import sys
import time
from pathlib import Path

_REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(_REPO_ROOT / "src"))

#: Experiment report headers, as printed by the benches.
HEADER = re.compile(
    r"^(FIG|NPC|THM|LP60|DAC90|DELAY|SCALE|ABLATION|ANALYTIC|FAMILIES|"
    r"ECO|OPEN|DECOMP)"
)
#: Lines that terminate a report block.
TERMINATOR = re.compile(r"^\.+\s*(\[|$)|benchmark: \d+ tests")

#: Engine-bench corpus shapes: (n_tracks, n_columns, n_connections, count).
#: Sized so one full run stays in the tens of seconds on a single CPU —
#: larger shapes cross into the exponential DP regime.
ENGINE_CORPUS = (
    (4, 30, 8, 60),
    (8, 60, 16, 40),
    (10, 80, 20, 8),
)


def extract_tables(text: str) -> str:
    """Pull the report blocks out of a pytest-benchmark log."""
    out: list[str] = []
    active = False
    for line in text.splitlines():
        if HEADER.match(line):
            if out:
                out.append("")
            active = True
        elif active and TERMINATOR.search(line):
            active = False
            continue
        if active:
            out.append(line.rstrip())
    return "\n".join(out) + "\n"


def run_engine_bench(jobs: int = 0) -> dict:
    """Route a random corpus sequentially, in parallel, and repeated.

    Returns the ``BENCH_engine.json`` payload: one entry per corpus
    shape with wall-times for ``jobs=1`` vs ``jobs=N`` plus the cache-hit
    rate of a repeated pass over the same corpus.
    """
    from repro.engine import EngineConfig, RoutingEngine, default_jobs
    from repro.generators.random_instances import (
        random_channel,
        random_feasible_instance,
    )

    from repro.core.kernels import active_kernel

    jobs = jobs or default_jobs()
    kernel = active_kernel()
    entries = []
    for n_tracks, n_columns, n_connections, count in ENGINE_CORPUS:
        instances = []
        for s in range(count):
            channel = random_channel(
                n_tracks, n_columns, 5.0, seed=s + n_tracks * 1000
            )
            conns = random_feasible_instance(
                channel, n_connections, seed=s + n_tracks * 1000 + 1
            )
            instances.append((channel, conns))

        engine = RoutingEngine(EngineConfig(seed=0))
        start = time.perf_counter()
        sequential = engine.route_many(instances, jobs=1)
        sequential_s = time.perf_counter() - start

        engine.clear_cache()
        engine.reset_stats()
        start = time.perf_counter()
        parallel = engine.route_many(instances, jobs=jobs)
        parallel_s = time.perf_counter() - start

        engine.reset_stats()
        engine.route_many(instances, jobs=1)  # repeated pass: cache hits
        snapshot = engine.stats()

        entries.append({
            "n_tracks": n_tracks,
            "n_columns": n_columns,
            "n_connections": n_connections,
            "instances": count,
            "algorithm": "auto",
            "kernel": kernel,
            "cpus": os.cpu_count(),
            "ok": sum(1 for r in sequential if r.ok),
            "sequential_s": round(sequential_s, 4),
            "parallel_s": round(parallel_s, 4),
            "jobs": jobs,
            "speedup": round(sequential_s / parallel_s, 3) if parallel_s else None,
            "results_identical": all(
                (a.routing and a.routing.assignment)
                == (b.routing and b.routing.assignment)
                for a, b in zip(sequential, parallel)
            ),
            "cache_hit_rate": round(
                snapshot["derived"].get("cache.hit_rate", 0.0), 4
            ),
        })
    from repro.analysis.kernel_bench import run_kernel_bench

    return {
        "generated_unix": int(time.time()),
        "cpus": os.cpu_count(),
        "kernel": kernel,
        "entries": entries,
        "kernels": run_kernel_bench(quick=True)["batches"],
    }


#: Serve-bench runs: (label, mode, requests, concurrency, rate, deadline_ms).
#: A calm closed loop (digest-verified against the offline engine), a
#: saturating closed loop, and an open loop hot enough to trigger the
#: admission layer on a 1-CPU host.
SERVE_RUNS = (
    ("closed_calm", "closed", 32, 4, None, None),
    ("closed_saturated", "closed", 64, 16, None, None),
    ("open_overload", "open", 256, 0, 4000.0, 20.0),
)


def _run_serve_scenarios(seed: int, corpus, wire: str) -> dict:
    """One framing's measurement: fresh server, warmup pass, then
    every :data:`SERVE_RUNS` shape through ``run_loadgen``.

    A fresh server per framing keeps the comparison honest (neither
    framing inherits the other's cache warmth), and the discarded
    warmup pass makes the measured runs steady-state — the regime a
    long-lived serving tier actually operates in.
    """
    import asyncio
    import threading

    from repro.serve import RoutingServer, ServeConfig
    from repro.serve.loadgen import run_loadgen

    server = RoutingServer(ServeConfig(
        port=0, http_port=0, seed=seed, max_queue=16,
    ))
    loop = asyncio.new_event_loop()
    ready = threading.Event()

    def serve() -> None:
        asyncio.set_event_loop(loop)
        loop.run_until_complete(server.start())
        ready.set()
        loop.run_until_complete(server.serve_forever())
        loop.close()

    thread = threading.Thread(target=serve, daemon=True)
    thread.start()
    if not ready.wait(30):
        raise RuntimeError("serve bench: server failed to start")

    try:
        # Warmup: one full pass over the corpus, report discarded.
        run_loadgen(
            "127.0.0.1", server.port, corpus=corpus,
            requests=len(corpus), mode="closed", concurrency=4,
            seed=seed, include_server_stats=False, wire=wire,
        )
        runs = {}
        for label, mode, requests, concurrency, rate, deadline_ms in SERVE_RUNS:
            runs[label] = run_loadgen(
                "127.0.0.1", server.port, corpus=corpus,
                requests=requests, mode=mode, concurrency=concurrency,
                rate=rate, deadline_ms=deadline_ms, seed=seed, wire=wire,
            )
    finally:
        loop.call_soon_threadsafe(server.request_drain)
        thread.join(30)
    return runs


def run_serve_bench(seed: int = 0) -> dict:
    """Serve a corpus over loopback and measure the serving stack.

    Runs every :data:`SERVE_RUNS` traffic shape twice — once per wire
    framing (NDJSON v1, binary v2), each against its own freshly
    started :class:`repro.serve.RoutingServer` with a warmup pass — and
    digest-checks both calm runs against an offline ``route_many`` of
    the same corpus.  Returns the ``BENCH_serve.json`` payload: binary
    v2 under ``runs`` (the recommended framing), NDJSON v1 under
    ``runs_v1``, and a ``wire`` section comparing the two.
    """
    from repro.engine import EngineConfig, RoutingEngine
    from repro.io.results import result_stream_digest
    from repro.serve.loadgen import build_corpus

    corpus = build_corpus(32, seed)
    runs_v1 = _run_serve_scenarios(seed, corpus, "v1")
    runs = _run_serve_scenarios(seed, corpus, "v2")

    offline = RoutingEngine(EngineConfig(seed=seed)).route_many(
        [(c, s) for c, s, _ in corpus],
        max_segments=[k for _, _, k in corpus],
    )
    offline_digest = result_stream_digest(offline)
    p50_v1 = runs_v1["closed_calm"]["latency_ms"]["p50"]
    p50_v2 = runs["closed_calm"]["latency_ms"]["p50"]
    return {
        "generated_unix": int(time.time()),
        "cpus": os.cpu_count(),
        "corpus_size": len(corpus),
        "offline_digest": offline_digest,
        "digest_identical": (
            runs["closed_calm"].get("digest") == offline_digest
            and runs_v1["closed_calm"].get("digest") == offline_digest
        ),
        "wire": {
            "closed_calm_p50_ms_v1": p50_v1,
            "closed_calm_p50_ms_v2": p50_v2,
            "closed_calm_p50_speedup": (
                round(p50_v1 / p50_v2, 3) if p50_v2 else None
            ),
            "negotiated_v1": runs_v1["closed_calm"]["wire"]["negotiated"],
            "negotiated_v2": runs["closed_calm"]["wire"]["negotiated"],
        },
        "runs": runs,
        "runs_v1": runs_v1,
        "replicated_faulted": run_replicated_fault_bench(seed),
        "warm_restart": run_warm_restart_bench(seed),
    }


def run_warm_restart_bench(seed: int = 0, requests: int = 32) -> dict:
    """Persistent-cache warm restart: SIGKILL a server, relaunch, reuse.

    Launches a real ``segroute serve`` subprocess with ``--cache-dir``,
    drives one calm loadgen pass (the *cold* life: every instance is
    solved and written through to the shared cache), SIGKILLs the
    process — no drain, no fsync courtesy — relaunches it on the same
    cache directory, and repeats the pass.  The warm life must answer
    from the persistent tier (``cache.persist.hits`` > 0, every request
    a ``serve.cache_fastpath`` hit) with answers digest-identical to the
    cold life and to the offline engine.  Recorded in
    ``BENCH_serve.json`` so the restart win (and its latency shape) is
    tracked release over release.
    """
    import json as _json
    import signal
    import tempfile

    from repro.engine import EngineConfig, RoutingEngine
    from repro.io.results import result_stream_digest
    from repro.serve.loadgen import build_corpus, run_loadgen
    from repro.serve.replica import ReplicaSet

    corpus = build_corpus(16, seed)

    def one_life(workdir: str, cache_dir: str, life: int):
        port_file = os.path.join(workdir, f"life-{life}.json")
        proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "serve",
                "--host", "127.0.0.1", "--port", "0", "--http-port", "0",
                "--port-file", port_file,
                "--seed", str(seed),
                "--cache-dir", cache_dir,
            ],
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
            env=ReplicaSet._child_env(),
        )
        deadline = time.monotonic() + 30
        port = None
        while time.monotonic() < deadline:
            try:
                with open(port_file, encoding="utf-8") as fh:
                    port = int(_json.load(fh)["port"])
                break
            except (OSError, ValueError, KeyError):
                time.sleep(0.05)
        if port is None:
            proc.kill()
            raise RuntimeError("warm-restart bench: server failed to start")
        report = run_loadgen(
            "127.0.0.1", port, corpus=corpus,
            requests=requests, mode="closed", concurrency=4, seed=seed,
        )
        return proc, report

    with tempfile.TemporaryDirectory(prefix="segroute-warmbench-") as workdir:
        cache_dir = os.path.join(workdir, "cache")
        proc, cold = one_life(workdir, cache_dir, 0)
        # SIGKILL: the ungraceful death the persistent tier must absorb.
        proc.send_signal(signal.SIGKILL)
        proc.wait(timeout=10)
        proc, warm = one_life(workdir, cache_dir, 1)
        proc.terminate()
        proc.wait(timeout=15)

    offline = RoutingEngine(EngineConfig(seed=seed)).route_many(
        [(c, s) for c, s, _ in corpus],
        max_segments=[k for _, _, k in corpus],
    )
    offline_digest = result_stream_digest(offline)
    warm_counters = (warm.get("server") or {}).get("counters", {})
    return {
        "requests": requests,
        "corpus_size": len(corpus),
        "cold_p50_ms": cold["latency_ms"]["p50"],
        "warm_p50_ms": warm["latency_ms"]["p50"],
        "persist_hits": warm_counters.get("cache.persist.hits", 0),
        "fastpath_hits": warm_counters.get("serve.cache_fastpath", 0),
        "digest_identical": (
            cold.get("digest") == offline_digest
            and warm.get("digest") == offline_digest
        ),
    }


def run_replicated_fault_bench(
    seed: int = 0, replicas: int = 3, requests: int = 100
) -> dict:
    """Availability under faults: loadgen a replicated tier being killed.

    Starts a :class:`repro.serve.ReplicaSet` of real replica processes
    behind a :class:`repro.serve.RoutingRouter`, with a seeded
    :class:`~repro.engine.resilience.faults.FaultPlan` that SIGKILLs one
    replica a third of the way through the run, then drives a closed
    loadgen through the router.  The scenario's contract — zero
    client-visible failures, at least one recorded failover, digest
    identical to the offline engine — is what the ``serve-chaos`` CI job
    asserts; here the same run is recorded into ``BENCH_serve.json``
    with per-replica failover/shed counts.
    """
    import asyncio
    import threading

    from repro.engine import EngineConfig, RoutingEngine
    from repro.engine.resilience.faults import FaultPlan
    from repro.io.results import result_stream_digest
    from repro.serve import ReplicaSet, RouterConfig, RoutingRouter
    from repro.serve.loadgen import build_corpus, run_loadgen

    corpus = build_corpus(25, seed)
    plan = FaultPlan(kill_replica_after=requests // 3, seed=seed + 7)
    replica_set = ReplicaSet(
        replicas, seed=seed, fault_plan=plan, heartbeat_interval=0.2,
    )
    router = RoutingRouter(
        replica_set,
        RouterConfig(port=0, http_port=0, seed=seed, forward_timeout=10.0),
        fault_plan=plan,
        own_replica_set=True,
    )
    loop = asyncio.new_event_loop()
    ready = threading.Event()

    def serve() -> None:
        asyncio.set_event_loop(loop)
        loop.run_until_complete(router.start())
        ready.set()
        loop.run_until_complete(router.serve_forever())
        loop.close()

    thread = threading.Thread(target=serve, daemon=True)
    thread.start()
    if not ready.wait(60):
        raise RuntimeError("replicated bench: router failed to start")

    try:
        report = run_loadgen(
            "127.0.0.1", router.port, corpus=corpus,
            requests=requests, mode="closed", concurrency=8, seed=seed,
        )
    finally:
        loop.call_soon_threadsafe(router.request_drain)
        thread.join(60)

    offline = RoutingEngine(EngineConfig(seed=seed)).route_many(
        [(c, s) for c, s, _ in corpus],
        max_segments=[k for _, _, k in corpus],
    )
    server_stats = report.get("server") or {}
    counters = server_stats.get("counters", {})
    statuses = report["statuses"]
    completed = report["completed"] or 1
    return {
        "replicas": replicas,
        "requests": requests,
        "faults": plan.as_spec(),
        "availability": round(statuses.get("ok", 0) / completed, 4),
        "statuses": statuses,
        "shed": report["shed"],
        "failovers": counters.get("serve.router.failovers", 0),
        "breaker_opens": counters.get("serve.router.breaker_opens", 0),
        "hedges": counters.get("serve.router.hedges", 0),
        "replica_kills": counters.get("serve.replica.fault_kills", 0),
        "restarts": counters.get("serve.replica.restarts", 0),
        "digest_identical": (
            report.get("digest") == result_stream_digest(offline)
        ),
        "per_replica": server_stats.get("replicas", {}),
        "latency_ms": report["latency_ms"],
    }


#: Pipeline-bench corpus: seeded 3-row chips at mixed track counts, so
#: the sweep covers converging, partially-failing, and negotiation-heavy
#: chips.  Mixed outcomes matter: only successful per-channel solves
#: land in the canonical cache, so an all-infeasible corpus would make
#: the warm-resubmit measurement vacuous.
PIPELINE_CHIPS = 24
PIPELINE_NETS = 14


def _pipeline_corpus():
    from repro.fpga.netlist import random_netlist
    from repro.io.netlist_format import dumps_netlist
    from repro.jobs import ChipSpec

    specs = []
    for seed in range(PIPELINE_CHIPS):
        specs.append(ChipSpec(
            netlist_text=dumps_netlist(
                random_netlist(PIPELINE_NETS, 3, seed=seed)
            ),
            rows=3, cells_per_row=6, tracks=4 + seed % 3, seg_types=2,
            seed=seed, max_rounds=8,
        ))
    return specs


def run_pipeline_bench(jobs: int = 0) -> dict:
    """Route a corpus of chips through the jobs pipeline three ways.

    Serial (in-process per-channel solves), engine-backed (batched
    ``route_many`` with a persistent cache dir), and a warm resubmit of
    the same corpus against the already-populated cache — the second
    ``job.submit`` a long-lived serving tier actually sees.  Returns
    the ``BENCH_pipeline.json`` payload with wall-times, channel
    throughput, the warm cache-hit rate, and the digest-parity verdict
    across all three passes.
    """
    import tempfile

    from repro.engine import EngineConfig, RoutingEngine, default_jobs
    from repro.jobs import run_chip_pipeline

    jobs = jobs or default_jobs()
    specs = _pipeline_corpus()

    start = time.perf_counter()
    serial = [run_chip_pipeline(spec) for spec in specs]
    serial_s = time.perf_counter() - start
    channels = sum(
        sum(r.n_solved for r in result.rounds) for result in serial
    )

    with tempfile.TemporaryDirectory(prefix="segroute-pipebench-") as cache:
        engine = RoutingEngine(
            EngineConfig(jobs=jobs, seed=0, cache_dir=cache)
        )
        try:
            start = time.perf_counter()
            engined = [
                run_chip_pipeline(spec, engine=engine) for spec in specs
            ]
            engine_s = time.perf_counter() - start

            engine.reset_stats()
            start = time.perf_counter()
            warm = [
                run_chip_pipeline(spec, engine=engine) for spec in specs
            ]
            warm_s = time.perf_counter() - start
            snapshot = engine.stats()
        finally:
            engine.close()

    return {
        "generated_unix": int(time.time()),
        "cpus": os.cpu_count(),
        "chips": len(specs),
        "nets_per_chip": PIPELINE_NETS,
        "converged_chips": sum(1 for r in serial if r.ok),
        "channel_solves": channels,
        "jobs": jobs,
        "serial_s": round(serial_s, 4),
        "engine_s": round(engine_s, 4),
        "warm_submit_s": round(warm_s, 4),
        "serial_channels_per_s": round(channels / serial_s, 1),
        "engine_channels_per_s": round(channels / engine_s, 1),
        "warm_channels_per_s": round(channels / warm_s, 1),
        "engine_speedup": round(serial_s / engine_s, 3) if engine_s else None,
        "warm_speedup": round(serial_s / warm_s, 3) if warm_s else None,
        "warm_cache_hit_rate": round(
            snapshot["derived"].get("cache.hit_rate", 0.0), 4
        ),
        "digest_identical": all(
            a.digest == b.digest == c.digest
            for a, b, c in zip(serial, engined, warm)
        ),
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--from-log", help="parse an existing bench log")
    parser.add_argument(
        "-o", "--output", default="bench_tables.txt",
        help="where to write the extracted tables",
    )
    parser.add_argument(
        "--engine-json", default="BENCH_engine.json",
        help="where to write the engine benchmark JSON",
    )
    parser.add_argument(
        "--engine-only", action="store_true",
        help="run only the engine benchmark (skip the pytest benches)",
    )
    parser.add_argument(
        "--no-engine", action="store_true",
        help="skip the engine benchmark",
    )
    parser.add_argument(
        "--serve-json", default="BENCH_serve.json",
        help="where to write the serving benchmark JSON",
    )
    parser.add_argument(
        "--serve-only", action="store_true",
        help="run only the serving benchmark (implies --no-engine)",
    )
    parser.add_argument(
        "--no-serve", action="store_true",
        help="skip the serving benchmark",
    )
    parser.add_argument(
        "--pipeline-json", default="BENCH_pipeline.json",
        help="where to write the chip-pipeline benchmark JSON",
    )
    parser.add_argument(
        "--pipeline-only", action="store_true",
        help="run only the chip-pipeline benchmark",
    )
    parser.add_argument(
        "--no-pipeline", action="store_true",
        help="skip the chip-pipeline benchmark",
    )
    parser.add_argument(
        "--jobs", type=int, default=0,
        help="worker count for the engine benchmark (default: per CPU)",
    )
    args = parser.parse_args(argv)

    if args.serve_only:
        args.no_engine = True
        args.no_pipeline = True
    if args.engine_only:
        args.no_pipeline = True
    if args.pipeline_only:
        args.no_engine = True
        args.no_serve = True

    if not args.engine_only and not args.serve_only and not args.pipeline_only:
        if args.from_log:
            text = Path(args.from_log).read_text()
        else:
            proc = subprocess.run(
                [sys.executable, "-m", "pytest", "benchmarks/",
                 "--benchmark-only"],
                capture_output=True, text=True, cwd=_REPO_ROOT,
            )
            text = proc.stdout + proc.stderr
            if proc.returncode != 0:
                print("warning: bench run exited nonzero", file=sys.stderr)
        tables = extract_tables(text)
        Path(args.output).write_text(tables)
        print(f"wrote {args.output} ({tables.count(chr(10))} lines)")

    if not args.no_engine:
        payload = run_engine_bench(jobs=args.jobs)
        Path(args.engine_json).write_text(json.dumps(payload, indent=2) + "\n")
        print(
            f"wrote {args.engine_json} "
            f"({len(payload['entries'])} corpus shapes, "
            f"{payload['cpus']} cpus)"
        )

    if not args.no_pipeline:
        payload = run_pipeline_bench(jobs=args.jobs)
        Path(args.pipeline_json).write_text(
            json.dumps(payload, indent=2) + "\n"
        )
        print(
            f"wrote {args.pipeline_json} "
            f"({payload['channel_solves']} channel solves over "
            f"{payload['chips']} chips, "
            f"{payload['converged_chips']} converged; serial "
            f"{payload['serial_channels_per_s']}/s, engine "
            f"{payload['engine_channels_per_s']}/s, warm resubmit "
            f"{payload['warm_channels_per_s']}/s, digest "
            f"{'identical' if payload['digest_identical'] else 'DIVERGED'})"
        )

    if not args.no_serve:
        payload = run_serve_bench()
        Path(args.serve_json).write_text(json.dumps(payload, indent=2) + "\n")
        faulted = payload["replicated_faulted"]
        warm = payload["warm_restart"]
        print(
            f"wrote {args.serve_json} "
            f"({len(payload['runs'])} traffic shapes, digest "
            f"{'identical' if payload['digest_identical'] else 'DIVERGED'}; "
            f"replicated availability {faulted['availability']:.2%} with "
            f"{faulted['failovers']} failovers under faults; warm restart "
            f"{warm['persist_hits']} persist hits, digest "
            f"{'identical' if warm['digest_identical'] else 'DIVERGED'})"
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

"""FIG9/10 + Theorems 5/6 — assignment-graph width vs the paper's bounds.

Measures the number of distinct frontiers per level (Fig. 10's structure)
on random instances and compares the maximum against the Theorem-5 bound
(2^T T!, unlimited routing) and the Theorem-6 bound ((K+1)^T, K-segment
routing).  The measured width must never exceed the bound, and for small
K is dramatically smaller — the reason the paper recommends the
K-segment variant.
"""

from repro.analysis.complexity import theorem5_bound, theorem6_bound
from repro.analysis.stats import format_table
from repro.core.dp import route_dp_with_stats
from repro.core.errors import RoutingInfeasibleError
from repro.generators.random_instances import random_channel, random_feasible_instance


def _measure(T, K, n_instances=12, M=14, N=40):
    widest = 0
    for seed in range(n_instances):
        ch = random_channel(T, N, 4.0, seed=seed)
        try:
            cs = random_feasible_instance(
                ch, M, seed=1000 + seed, max_segments=K
            )
            _, stats = route_dp_with_stats(ch, cs, max_segments=K)
        except Exception:
            continue
        widest = max(widest, stats.max_level_width)
    return widest


def test_thm56_frontier_bounds(benchmark, show):
    def _sweep():
        rows = []
        for T in (2, 3, 4, 5):
            for K in (1, 2, None):
                measured = _measure(T, K)
                bound = (
                    theorem5_bound(T) if K is None else theorem6_bound(T, K)
                )
                rows.append(
                    (
                        T,
                        "inf" if K is None else K,
                        measured,
                        bound,
                        "Thm5" if K is None else "Thm6",
                    )
                )
        return rows

    rows = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    show(
        "THM5/6: measured max assignment-graph level width vs bound\n"
        + format_table(["T", "K", "measured max width", "bound", "thm"], rows)
    )
    for T, K, measured, bound, _ in rows:
        assert measured <= bound
    # K-segment width is far below the unlimited bound for T=5.
    k1_width = next(m for T, K, m, _, _ in rows if T == 5 and K == 1)
    assert k1_width <= theorem6_bound(5, 1)

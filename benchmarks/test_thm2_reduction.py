"""NPC2 — the Theorem-2 (Appendix) reduction: NMTS -> 2-segment routing.

Regenerates the Q2 construction for Example 1 (15 tracks, 39 connections)
with its constructive 2-segment routing, and verifies the iff on an n=2
yes/no pair using the exact router.
"""

import pytest

from repro.core.errors import RoutingInfeasibleError
from repro.core.exact import route_exact
from repro.core.npc import (
    NMTSInstance,
    build_two_segment_instance,
    normalize_nmts,
    routing_from_matching,
    solve_nmts,
)
from repro.generators.paper_examples import example1_nmts


def _construct_and_route():
    inst = example1_nmts()
    q2 = build_two_segment_instance(inst)
    sol = solve_nmts(inst)
    routing = routing_from_matching(q2, *sol)
    return q2, routing


def test_thm2_reduction_example1(benchmark, show):
    q2, routing = benchmark(_construct_and_route)
    routing.validate(max_segments=2)
    n = q2.nmts.n
    show(
        "NPC2: Theorem-2 construction on Example 1\n"
        f"  Q2: T={q2.channel.n_tracks} (=2n^2-n), "
        f"M={len(q2.connections)}, N={q2.channel.n_columns}\n"
        f"  2-segment routing constructed per the Appendix; max segments "
        f"used = {routing.max_segments_used()}"
    )
    assert q2.channel.n_tracks == 2 * n * n - n == 15
    assert routing.max_segments_used() <= 2


def test_thm2_iff_small(benchmark, show):
    def _both_directions():
        # YES instance, n=2.
        yes = NMTSInstance((2, 5), (4, 6), (8, 9))  # 2+6=8, 5+4=9
        assert solve_nmts(yes) is not None
        norm, _, _ = normalize_nmts(yes)
        q2 = build_two_segment_instance(norm)
        route_exact(
            q2.channel, q2.connections, max_segments=2, node_limit=4_000_000
        ).validate(2)

        # NO instance, n=2 (balance holds, no pairing: 7 is unreachable).
        no = NMTSInstance((2, 5), (4, 6), (7, 10))
        assert solve_nmts(no) is None
        norm_no, _, _ = normalize_nmts(no)
        q2_no = build_two_segment_instance(norm_no)
        with pytest.raises(RoutingInfeasibleError):
            route_exact(
                q2_no.channel, q2_no.connections, max_segments=2,
                node_limit=4_000_000,
            )

    benchmark.pedantic(_both_directions, rounds=1, iterations=1)
    show(
        "NPC2-iff (n=2): YES instance 2-segment routable, NO instance "
        "proven unroutable — both directions of Theorem 2 observed."
    )

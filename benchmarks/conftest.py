"""Benchmark-suite configuration.

Every bench prints the table it regenerates (the EXPERIMENTS.md rows);
run with ``pytest benchmarks/ --benchmark-only -s`` to see them.
"""

import pytest


@pytest.fixture
def show(capsys):
    """Print a report so it survives capture (teardown section)."""

    def _show(text: str) -> None:
        with capsys.disabled():
            print("\n" + text)

    return _show

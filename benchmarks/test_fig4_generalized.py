"""FIG4 — generalized routing necessity (Fig. 4).

Regenerates the figure's claim: the instance admits no track-per-
connection routing, but a generalized routing exists, with the weaving
connection split across segments s22 (track 2) and s33 (track 3).
"""

import pytest

from repro.core.dp import route_dp
from repro.core.errors import RoutingInfeasibleError
from repro.core.generalized import route_generalized_with_stats
from repro.generators.paper_examples import fig4_channel, fig4_connections


def test_fig4_generalized(benchmark, show):
    ch, cs = fig4_channel(), fig4_connections()
    with pytest.raises(RoutingInfeasibleError):
        route_dp(ch, cs)
    g, stats = benchmark(route_generalized_with_stats, ch, cs)
    g.validate()
    i = cs.index_of(cs.by_name("c4"))
    segs = {(s.track + 1, s.left, s.right) for s in g.segments_used(i)}
    show(
        "FIG4: single-track routing infeasible; generalized routing found.\n"
        f"  weaving connection c4 occupies segments: "
        + ", ".join(f"track {t} ({l},{r})" for t, l, r in sorted(segs))
        + f"\n  assignment-graph pieces: {stats.n_pieces}, "
        f"max level width {stats.max_level_width}"
    )
    assert segs == {(2, 3, 6), (3, 6, 7)}

"""DAC90-P — routing probability vs track count (the DAC 1990 curves).

For the stochastic traffic model, the probability that a complete
(K-segment) routing exists rises sharply with the number of tracks; the
curve for K=2 sits left of (i.e., dominates) the curve for K=1, because
joining two segments recovers flexibility.  Both regenerated here with
common random numbers over the geometric design.
"""

from repro.analysis.stats import format_table
from repro.design.evaluate import routing_probability
from repro.design.segmentation import geometric_segmentation
from repro.design.stochastic import TrafficModel

TRAFFIC = TrafficModel(lam=0.5, mean_length=6)
N_COLUMNS = 48
TRIALS = 14
TRACKS = (4, 6, 8, 10, 12)


def _designer(T, N):
    return geometric_segmentation(T, N, 4, 2.0, 3)


def _curves():
    curves = {}
    for k in (1, 2):
        curves[k] = routing_probability(
            _designer, TRACKS, TRAFFIC, N_COLUMNS, TRIALS,
            max_segments=k, seed=21,
        )
    return curves


def test_dac90_routing_probability(benchmark, show):
    curves = benchmark.pedantic(_curves, rounds=1, iterations=1)
    rows = []
    for i, T in enumerate(TRACKS):
        rows.append(
            (
                T,
                f"{curves[1][i].probability:.2f}",
                f"{curves[2][i].probability:.2f}",
            )
        )
    show(
        "DAC90-P: routing probability vs tracks "
        f"(E[density]={TRAFFIC.expected_density:g}, trials={TRIALS})\n"
        + format_table(["tracks", "P(route | K=1)", "P(route | K=2)"], rows)
    )
    # Monotone in T (common random numbers) and K=2 dominates K=1.
    for k in (1, 2):
        probs = [r.probability for r in curves[k]]
        assert probs == sorted(probs)
    for i in range(len(TRACKS)):
        assert curves[2][i].probability >= curves[1][i].probability
    # Enough tracks ⇒ (near-)certain routing.
    assert curves[2][-1].probability >= 0.9

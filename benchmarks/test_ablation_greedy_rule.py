"""ABLATION-GREEDY — why Theorem 3's minimum-right-end rule matters.

The Theorem-3 greedy is exact for 1-segment routing *because* it always
takes an unoccupied covering segment with the smallest right end.  The
obvious alternative — first-fit on track order — is not exact.  This
ablation measures both rules against the exact answer (the matching
formulation) on random instances and exhibits a minimal instance where
first-fit fails.
"""

from repro.analysis.stats import format_table
from repro.core.channel import channel_from_breaks
from repro.core.connection import ConnectionSet
from repro.core.errors import HeuristicFailure, RoutingInfeasibleError
from repro.core.greedy import route_one_segment_greedy
from repro.core.heuristics import route_first_fit
from repro.core.matching import one_segment_feasible
from repro.generators.random_instances import random_channel, random_feasible_instance


def _rates(n_instances=60):
    theorem3 = firstfit = feasible = 0
    for seed in range(n_instances):
        ch = random_channel(4, 30, 3.0, seed=seed)
        try:
            cs = random_feasible_instance(
                ch, 9, seed=1000 + seed, max_segments=1, mean_length=2.5
            )
        except Exception:
            continue
        if not one_segment_feasible(ch, cs):
            continue
        feasible += 1
        try:
            route_one_segment_greedy(ch, cs).validate(1)
            theorem3 += 1
        except RoutingInfeasibleError:
            pass
        try:
            route_first_fit(ch, cs, max_segments=1).validate(1)
            firstfit += 1
        except HeuristicFailure:
            pass
    return feasible, theorem3, firstfit


def test_ablation_greedy_rule(benchmark, show):
    feasible, theorem3, firstfit = benchmark.pedantic(
        _rates, rounds=1, iterations=1
    )
    rows = [
        ("Theorem-3 (min right end)", f"{theorem3}/{feasible}"),
        ("first-fit (track order)", f"{firstfit}/{feasible}"),
    ]
    show(
        "ABLATION-GREEDY: success on feasible K=1 instances\n"
        + format_table(["rule", "routed"], rows)
    )
    # Theorem 3 is exact: routes every feasible instance.
    assert theorem3 == feasible
    assert firstfit <= theorem3


def test_ablation_greedy_counterexample(benchmark, show):
    """A concrete instance where first-fit fails but Theorem 3 routes.

    Track 1's covering segment for c1 is long (right end 9); track 2's is
    short (right end 4).  First-fit parks c1 on track 1, starving c2 =
    (4, 9), which fits a single segment only in track 1.
    """
    ch = channel_from_breaks(9, [(), (4,)])
    cs = ConnectionSet.from_spans([(1, 3), (4, 9)])

    def _both():
        exact = route_one_segment_greedy(ch, cs)
        exact.validate(1)
        try:
            route_first_fit(ch, cs, max_segments=1)
            ff = True
        except HeuristicFailure:
            ff = False
        return exact, ff

    exact, ff = benchmark(_both)
    show(
        "ABLATION-GREEDY counterexample: tracks [(1,9)], [(1,4),(5,9)]; "
        "connections (1,3), (4,9)\n"
        f"  Theorem-3 rule: c1 -> track 2 (segment ends 4 < 9), leaving "
        f"track 1's (1,9) for c2: {exact.as_dict()}\n"
        f"  first-fit: c1 -> track 1, c2 unroutable -> "
        f"{'routed' if ff else 'FAILS'}"
    )
    assert exact.as_dict() == {"c1": 1, "c2": 0}
    assert not ff

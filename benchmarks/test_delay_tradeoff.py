"""DELAY — the Fig. 2 delay trade-off, quantified with the Elmore model.

The paper's motivation for segmented channels: fully segmenting every
track "would cause unacceptable delays" (a resistive switch per column),
while unsegmented tracks compound the capacitance problem.  A designed
segmentation sits between.  We route the same stochastic traffic in the
three channel styles and compare mean/max Elmore delay.

Paper shape: designed < min(fully segmented, unsegmented) on mean delay.
"""

from repro.analysis.stats import format_table
from repro.core.api import route
from repro.core.channel import fully_segmented_channel, unsegmented_channel
from repro.core.connection import density
from repro.core.errors import HeuristicFailure, RoutingInfeasibleError
from repro.design.segmentation import geometric_segmentation
from repro.design.stochastic import TrafficModel, sample_connections
from repro.fpga.delay import DelayModel, routing_delay_profile

N = 48
MODEL = DelayModel()


def _route_in(channel_factory, conns, max_tracks=40):
    for t in range(max(density(conns), 1), max_tracks):
        try:
            return route(channel_factory(t), conns)
        except (RoutingInfeasibleError, HeuristicFailure):
            continue
    raise RoutingInfeasibleError("no style fits")


def _compare(seed):
    conns = sample_connections(TrafficModel(0.4, 6), N, seed=seed)
    styles = {
        "fully segmented": lambda t: fully_segmented_channel(t, N),
        "unsegmented": lambda t: unsegmented_channel(t, N),
        "designed (geometric)": lambda t: geometric_segmentation(t, N, 4, 2.0, 3),
    }
    out = {}
    for name, factory in styles.items():
        r = _route_in(factory, conns)
        mean, mx, _ = routing_delay_profile(r, MODEL)
        out[name] = (r.channel.n_tracks, mean, mx)
    return out


def test_delay_tradeoff(benchmark, show):
    results = benchmark.pedantic(_compare, args=(5,), rounds=1, iterations=1)
    rows = [
        (name, tracks, f"{mean:.2f}", f"{mx:.2f}")
        for name, (tracks, mean, mx) in results.items()
    ]
    show(
        "DELAY: Elmore delay by channel style (same traffic, N=48)\n"
        + format_table(["style", "tracks", "mean delay", "max delay"], rows)
        + "\n  (arbitrary RC units; relative order is the claim)"
    )
    designed = results["designed (geometric)"][1]
    assert designed < results["fully segmented"][1]
    assert designed < results["unsegmented"][1]

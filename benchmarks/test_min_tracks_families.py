"""FAMILIES — minimum track count across design families.

For a batch of stochastic traffic draws: the exact minimum track count of
each segmentation family (via `analysis.minimum_tracks`), referenced to
the unconstrained density.  The clairvoyant per-instance design achieves
the density by construction; the statistical families pay measured
premiums — quantifying how much of the "few tracks more" overhead is the
price of not knowing the traffic in advance.
"""

from repro.analysis.min_tracks import minimum_tracks
from repro.analysis.stats import format_table, summarize
from repro.core.connection import density
from repro.core.errors import ReproError
from repro.design.per_instance import segmentation_for_instance
from repro.design.segmentation import (
    geometric_segmentation,
    staggered_uniform_segmentation,
)
from repro.design.stochastic import TrafficModel, sample_connections

TRAFFIC = TrafficModel(lam=0.45, mean_length=5)
N_COLUMNS = 40
TRIALS = 10


def _families():
    return {
        "geometric": lambda T, N: geometric_segmentation(T, N, 4, 2.0, 3),
        "staggered(5)": lambda T, N: staggered_uniform_segmentation(T, N, 5),
    }


def _sweep():
    rows = []
    draws = [
        sample_connections(TRAFFIC, N_COLUMNS, seed=s) for s in range(TRIALS)
    ]
    draws = [d for d in draws if len(d) > 0]
    per_family = {name: [] for name in _families()}
    per_family["per-instance (clairvoyant)"] = []
    densities = []
    for conns in draws:
        d = density(conns)
        densities.append(d)
        clairvoyant = segmentation_for_instance(conns, N_COLUMNS)
        per_family["per-instance (clairvoyant)"].append(clairvoyant.n_tracks)
        for name, designer in _families().items():
            try:
                per_family[name].append(
                    minimum_tracks(
                        designer, conns, N_COLUMNS, max_segments=2, limit=64
                    )
                )
            except ReproError:
                per_family[name].append(64)
    for name, counts in per_family.items():
        overhead = [c - d for c, d in zip(counts, densities)]
        s = summarize(overhead)
        rows.append((name, f"{s.mean:.2f}", int(s.minimum), int(s.maximum)))
    return rows, sum(densities) / len(densities)


def test_min_tracks_families(benchmark, show):
    rows, mean_density = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    show(
        "FAMILIES: min-track overhead vs unconstrained density "
        f"(K=2, mean density {mean_density:.1f})\n"
        + format_table(["design family", "mean overhead", "min", "max"], rows)
    )
    by_name = {r[0]: float(r[1]) for r in rows}
    assert by_name["per-instance (clairvoyant)"] == 0.0
    assert by_name["geometric"] <= 6.0

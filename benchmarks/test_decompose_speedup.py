"""DECOMP — clean cuts, explicit decomposition, and the DP's self-reset.

On instances whose traffic respects periodic all-track switch boundaries,
`route_dp_decomposed` solves independent sub-DPs.  The measured finding
is sharper than expected: the *monolithic* DP's level width already
equals the widest piece's — the frontier re-normalization to each next
connection's left end forgets everything at a clean cut, so the DP
self-decomposes.  Explicit decomposition therefore buys bounded peak
memory (one piece's levels at a time) and embarrassing parallelism, not
width — and this bench pins that equality so a regression in the
normalization (which *would* blow the width up) gets caught.
"""

import time

from repro.analysis.stats import format_table
from repro.core.channel import SegmentedChannel, Track
from repro.core.connection import ConnectionSet
from repro.core.decompose import decompose, route_dp_decomposed
from repro.core.dp import route_dp_with_stats
from repro.substrate.prng import rng_from


def _separable_instance(n_blocks, tracks=5, block=8, seed=1):
    """Blocks share boundary switches (the clean cuts) but are
    heterogeneously segmented inside, so the plain DP must track real
    per-track diversity while the decomposed runs restart per block."""
    n_cols = n_blocks * block
    rng = rng_from(seed)
    boundary = set(range(block, n_cols, block))
    track_list = []
    for _ in range(tracks):
        inner = {
            base + rng.randint(1, block - 1)
            for base in range(0, n_cols, block)
            if rng.random() < 0.8
        }
        track_list.append(Track(n_cols, tuple(sorted(boundary | inner))))
    ch = SegmentedChannel(track_list)
    spans = []
    for base in range(0, n_cols, block):
        for _ in range(tracks - 1):
            l = base + rng.randint(1, block - 2)
            spans.append((l, min(base + block, l + rng.randint(0, block // 2))))
    return ch, ConnectionSet.from_spans(spans)


def test_decompose_speedup(benchmark, show):
    ch, cs = _separable_instance(8)
    routing = benchmark(route_dp_decomposed, ch, cs)
    routing.validate()

    rows = []
    piece_widths = []
    plain_widths = []
    for n_blocks in (4, 8, 16):
        chB, csB = _separable_instance(n_blocks)
        pieces = decompose(chB, csB)
        t0 = time.perf_counter()
        _, stats = route_dp_with_stats(chB, csB)
        t_plain = time.perf_counter() - t0
        t0 = time.perf_counter()
        route_dp_decomposed(chB, csB)
        t_dec = time.perf_counter() - t0
        widest_piece = 0
        for g in pieces:
            _, s = route_dp_with_stats(chB, g)
            widest_piece = max(widest_piece, s.max_level_width)
        piece_widths.append(widest_piece)
        plain_widths.append(stats.max_level_width)
        rows.append(
            (
                n_blocks,
                len(csB),
                len(pieces),
                stats.max_level_width,
                widest_piece,
                f"{t_plain * 1000:.1f}ms",
                f"{t_dec * 1000:.1f}ms",
            )
        )
    show(
        "DECOMP: decomposition at clean cuts (T=5, heterogeneous blocks)\n"
        + format_table(
            [
                "blocks", "M", "pieces", "plain width", "piece width",
                "plain", "decomposed",
            ],
            rows,
        )
        + "\n  (equal widths = the DP's frontier normalization already "
        "resets at clean cuts; decomposition buys memory/parallelism)"
    )
    # Decomposition finds a piece per block, and the monolithic width
    # equals the widest piece's — the self-reset property.
    assert all(r[2] == r[0] for r in rows)
    assert piece_widths == plain_widths

"""SCALE-M — the general DP is linear in M for fixed T (Section IV-B).

"...an algorithm that finds a routing in time linear in M (the number of
connections) when T (the number of tracks) is fixed."  Measured directly:
per-connection time on a fixed 5-track channel for M up to 200.
"""

import time

from repro.analysis.stats import format_table
from repro.core.dp import route_dp, route_dp_with_stats
from repro.generators.random_instances import random_channel, random_feasible_instance


def _instance(M, seed=3):
    ch = random_channel(5, 6 * M + 20, 5.0, seed=seed)
    cs = random_feasible_instance(ch, M, seed=50 + seed, mean_length=4.0)
    return ch, cs


def test_dp_scaling_m(benchmark, show):
    ch, cs = _instance(50)
    routing = benchmark(route_dp, ch, cs)
    routing.validate()

    rows = []
    per_conn = []
    for M in (25, 50, 100, 200):
        chM, csM = _instance(M)
        t0 = time.perf_counter()
        _, stats = route_dp_with_stats(chM, csM)
        elapsed = time.perf_counter() - t0
        per_conn.append(elapsed / M)
        rows.append(
            (
                M,
                stats.max_level_width,
                f"{elapsed * 1000:.1f}ms",
                f"{per_conn[-1] * 1e6:.0f}us",
            )
        )
    show(
        "SCALE-M: general DP runtime vs M (T=5 fixed)\n"
        + format_table(["M", "max width", "time", "time/connection"], rows)
    )
    # Linear: per-connection cost stays within a small factor.
    assert max(per_conn) <= 10 * min(per_conn) + 1e-4

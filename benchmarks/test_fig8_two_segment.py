"""FIG8 — the Theorem-4 greedy walkthrough (at most two segments/track).

Regenerates the printed trace: c1 -> t1; c2 pooled; c3 tie-broken onto
t2; the pool flushed onto t3 the moment |P| equals the unoccupied track
count; c4 assigned last.
"""

from repro.analysis.stats import format_table
from repro.core.dp import route_dp
from repro.core.greedy import route_two_segment_tracks_greedy
from repro.generators.paper_examples import fig8_channel, fig8_connections


def test_fig8_two_segment(benchmark, show):
    ch, cs = fig8_channel(), fig8_connections()
    routing = benchmark(route_two_segment_tracks_greedy, ch, cs)
    routing.validate()
    rows = [
        (
            c.name,
            f"[{c.left},{c.right}]",
            f"t{routing.assignment[i] + 1}",
            routing.segments_used_count(i),
        )
        for i, c in enumerate(cs)
    ]
    show(
        "FIG8: <=2-segment greedy walkthrough\n"
        + format_table(["conn", "span", "track", "segments"], rows)
    )
    assert routing.as_dict() == {"c1": 0, "c2": 2, "c3": 1, "c4": 0}
    # Exactness cross-check: the DP agrees the instance is routable.
    route_dp(ch, cs).validate()

"""FIG3 — the Section IV-A greedy walkthrough on the Fig. 3 instance.

Regenerates the printed 1-segment greedy assignment (c1 -> s21,
c2 -> s31 are unambiguous in the scan; the rest are tie-broken) and
benchmarks the O(MT) greedy against the matching formulation on the same
instance.
"""

from repro.analysis.stats import format_table
from repro.core.greedy import route_one_segment_greedy
from repro.core.matching import route_one_segment_matching
from repro.generators.paper_examples import fig3_channel, fig3_connections


def test_fig3_greedy(benchmark, show):
    ch, cs = fig3_channel(), fig3_connections()
    routing = benchmark(route_one_segment_greedy, ch, cs)
    routing.validate(max_segments=1)
    rows = []
    for i, c in enumerate(cs):
        seg = routing.segments_used(i)[0]
        rows.append(
            (c.name, f"[{c.left},{c.right}]", f"s{seg.track + 1}{seg.index + 1}")
        )
    show(
        "FIG3: 1-segment greedy on the Fig. 3 instance\n"
        + format_table(["connection", "span", "segment"], rows)
    )
    d = routing.as_dict()
    assert d["c1"] == 1  # s21
    assert d["c2"] == 2  # s31
    # The matching router agrees on feasibility.
    route_one_segment_matching(ch, cs).validate(max_segments=1)

"""FIG7 — optimal 1-segment routing via bipartite matching.

Regenerates the Fig. 7 graph for the Fig. 3 instance and shows the
minimum-weight matching (weight = occupied segment length) against the
Theorem-3 greedy: the matching's total weight is never worse, and on the
Fig. 3 instance the optimum is computed alongside the graph size the
paper's O(V^3) bound refers to.
"""

from repro.analysis.stats import format_table
from repro.core.greedy import route_one_segment_greedy
from repro.core.matching import (
    one_segment_bipartite_graph,
    route_one_segment_matching,
)
from repro.core.routing import occupied_length_weight
from repro.generators.paper_examples import fig3_channel, fig3_connections


def test_fig7_matching(benchmark, show):
    ch, cs = fig3_channel(), fig3_connections()
    w = occupied_length_weight(ch)
    optimal = benchmark(route_one_segment_matching, ch, cs, w)
    optimal.validate(max_segments=1)
    greedy = route_one_segment_greedy(ch, cs)
    segments, adjacency = one_segment_bipartite_graph(ch, cs)
    n_edges = sum(len(row) for row in adjacency)
    rows = [
        (
            c.name,
            f"t{optimal.assignment[i] + 1}",
            w(c, optimal.assignment[i]),
            f"t{greedy.assignment[i] + 1}",
            w(c, greedy.assignment[i]),
        )
        for i, c in enumerate(cs)
    ]
    show(
        "FIG7: weighted matching vs greedy on the Fig. 3 instance\n"
        f"  bipartite graph: {len(cs)} + {len(segments)} nodes, {n_edges} edges\n"
        + format_table(
            ["conn", "opt track", "opt w", "greedy track", "greedy w"], rows
        )
        + f"\n  total: optimal={optimal.total_weight(w):g} "
        f"greedy={greedy.total_weight(w):g}"
    )
    assert optimal.total_weight(w) <= greedy.total_weight(w)
    assert len(segments) == 8

"""ABLATION-HEURISTICS — heuristic routers vs the exact DP.

How much optimality do the cheap sweeps give up?  On routable random
instances (feasible by construction, confirmed by the DP), measure the
success rates of first-fit, best-fit, randomized-restart, and the LP
heuristic.  Paper-relevant shape: the LP relaxation's success is near
total (Section IV-C); best-fit beats first-fit; restarts close most of
the remaining gap at bounded extra cost.
"""

from repro.analysis.stats import format_table
from repro.core.errors import HeuristicFailure
from repro.core.heuristics import (
    route_best_fit,
    route_first_fit,
    route_random_restart,
)
from repro.core.lp import route_lp
from repro.generators.random_instances import random_channel, random_feasible_instance

N_INSTANCES = 24


def _instances():
    out = []
    for seed in range(N_INSTANCES):
        ch = random_channel(5, 40, 4.0, seed=seed)
        try:
            cs = random_feasible_instance(
                ch, 14, seed=2000 + seed, max_segments=2
            )
        except Exception:
            continue
        out.append((ch, cs))
    return out


def _rates(instances):
    routers = {
        "first-fit": lambda ch, cs: route_first_fit(ch, cs, 2),
        "best-fit": lambda ch, cs: route_best_fit(ch, cs, 2),
        "random x32": lambda ch, cs: route_random_restart(ch, cs, 2, seed=1),
        "LP relaxation": lambda ch, cs: route_lp(ch, cs, 2),
    }
    scores = {name: 0 for name in routers}
    for ch, cs in instances:
        for name, fn in routers.items():
            try:
                fn(ch, cs).validate(2)
                scores[name] += 1
            except HeuristicFailure:
                pass
    return scores


def test_ablation_heuristics(benchmark, show):
    instances = _instances()
    scores = benchmark.pedantic(_rates, args=(instances,), rounds=1, iterations=1)
    total = len(instances)
    rows = [(name, f"{n}/{total}") for name, n in scores.items()]
    show(
        "ABLATION-HEURISTICS: success on DP-routable instances (K=2)\n"
        + format_table(["router", "routed"], rows)
    )
    assert scores["best-fit"] >= scores["first-fit"]
    assert scores["random x32"] >= scores["best-fit"] - 2
    assert scores["LP relaxation"] >= total - 2  # the paper's observation

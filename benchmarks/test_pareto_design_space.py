"""PARETO — the switch-budget / routability frontier at a fixed track
budget.

Fig. 2's trade-off as the architect's chart: candidate segmentations at
T=8 tracks, scored on structural switch count (delay/area proxy) and
Monte-Carlo routing probability under the K=2 delay budget.  Both
extremes collapse: the unsegmented channel is cheap but can hold one net
per track, and the fully segmented channel — whose unit segments cap a
K=2 connection at two columns — spends 312 switches to route *nothing*.
The designed families populate the knee, with the geometric multi-length
design reaching P=1 at a seventh of full segmentation's switch budget.
"""

from repro.analysis.stats import format_table
from repro.core.channel import fully_segmented_channel, unsegmented_channel
from repro.design.pareto import explore_design_space, pareto_front
from repro.design.segmentation import (
    geometric_segmentation,
    staggered_uniform_segmentation,
    uniform_segmentation,
)
from repro.design.stochastic import TrafficModel

TRAFFIC = TrafficModel(lam=0.5, mean_length=5)
N_COLUMNS = 40
N_TRACKS = 8
TRIALS = 12

CANDIDATES = [
    ("unsegmented", lambda T, N: unsegmented_channel(T, N)),
    ("uniform(10)", lambda T, N: uniform_segmentation(T, N, 10)),
    ("staggered(10)", lambda T, N: staggered_uniform_segmentation(T, N, 10)),
    ("staggered(5)", lambda T, N: staggered_uniform_segmentation(T, N, 5)),
    ("geometric r=2", lambda T, N: geometric_segmentation(T, N, 4, 2.0, 3)),
    ("geometric r=3", lambda T, N: geometric_segmentation(T, N, 3, 3.0, 3)),
    ("fully segmented", lambda T, N: fully_segmented_channel(T, N)),
]


def _explore():
    points = explore_design_space(
        CANDIDATES, N_TRACKS, TRAFFIC, N_COLUMNS, TRIALS,
        max_segments=2, seed=17,
    )
    return points, pareto_front(points)


def test_pareto_design_space(benchmark, show):
    points, front = benchmark.pedantic(_explore, rounds=1, iterations=1)
    front_labels = {p.label for p in front}
    rows = [
        (
            p.label,
            p.n_switches,
            f"{p.probability:.2f}",
            "*" if p.label in front_labels else "",
        )
        for p in sorted(points, key=lambda p: p.n_switches)
    ]
    show(
        f"PARETO: switch budget vs P(route) at T={N_TRACKS}, K=2 "
        f"(E[density]={TRAFFIC.expected_density:g}; * = Pareto-efficient)\n"
        + format_table(["design", "switches", "P(route)", "front"], rows)
    )
    by_label = {p.label: p for p in points}
    # The unsegmented end: minimal switches, (near-)zero routability here.
    assert by_label["unsegmented"].n_switches == 0
    # Full segmentation pays an order of magnitude more switches than the
    # geometric design without dominating it.
    assert (
        by_label["fully segmented"].n_switches
        >= 5 * by_label["geometric r=2"].n_switches
    )
    assert not by_label["fully segmented"].dominates(
        by_label["geometric r=2"]
    )
    # The front is non-empty and internally non-dominated.
    assert front
    for a in front:
        assert not any(b.dominates(a) for b in front)

"""ABLATION-STAGGER — aligned vs staggered switch positions.

DESIGN.md's design-choice question: with identical segment *lengths*,
does offsetting the switch positions across tracks matter?  Yes — when
every track breaks at the same columns, a connection crossing a break
crosses it in *every* track, so the channel wastes capacity in lockstep;
staggering de-correlates the breaks.  Measured: routing probability at
equal track budgets under K=1 (where alignment hurts most: a connection
crossing the common break fits no single segment anywhere).
"""

from repro.analysis.stats import format_table
from repro.design.evaluate import routing_probability
from repro.design.segmentation import (
    staggered_uniform_segmentation,
    uniform_segmentation,
)
from repro.design.stochastic import TrafficModel

TRAFFIC = TrafficModel(lam=0.45, mean_length=4)
N_COLUMNS = 40
TRACKS = (4, 6, 8, 10)
TRIALS = 14


def _curves():
    designs = {
        "aligned uniform(8)": lambda T, N: uniform_segmentation(T, N, 8),
        "staggered uniform(8)": lambda T, N: staggered_uniform_segmentation(
            T, N, 8
        ),
    }
    return {
        name: routing_probability(
            d, TRACKS, TRAFFIC, N_COLUMNS, TRIALS, max_segments=1, seed=9
        )
        for name, d in designs.items()
    }


def test_ablation_stagger(benchmark, show):
    curves = benchmark.pedantic(_curves, rounds=1, iterations=1)
    rows = []
    for i, T in enumerate(TRACKS):
        rows.append(
            (
                T,
                f"{curves['aligned uniform(8)'][i].probability:.2f}",
                f"{curves['staggered uniform(8)'][i].probability:.2f}",
            )
        )
    show(
        "ABLATION-STAGGER: routing probability, aligned vs staggered "
        "(K=1, equal segment length)\n"
        + format_table(["tracks", "aligned", "staggered"], rows)
    )
    # Staggering never hurts, and strictly helps somewhere on the sweep.
    aligned = [curves["aligned uniform(8)"][i].probability for i in range(len(TRACKS))]
    staggered = [
        curves["staggered uniform(8)"][i].probability for i in range(len(TRACKS))
    ]
    assert all(s >= a for s, a in zip(staggered, aligned))
    assert any(s > a for s, a in zip(staggered, aligned))

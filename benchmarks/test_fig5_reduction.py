"""FIG5 — Example 1 / Fig. 5: the Theorem-1 reduction on the paper's
instance.

x = (2, 5, 8), y = (9, 11, 12), z = (11, 17, 19).  Regenerates: the
construction Q (9 tracks, 30 connections, 27 columns — exactly Fig. 5's
dimensions), the Lemma-1 routing built from the NMTS solution, and the
Lemma-2 extraction recovering a solution from the routing.  Also checks
the reverse: perturbing z to an unsolvable instance makes Q unroutable.
"""

import pytest

from repro.core.errors import ReproError, RoutingInfeasibleError
from repro.core.exact import route_exact
from repro.core.npc import (
    NMTSInstance,
    build_unlimited_instance,
    matching_from_routing,
    normalize_nmts,
    routing_from_matching,
    solve_nmts,
)
from repro.generators.paper_examples import example1_nmts


def _roundtrip():
    inst = example1_nmts()
    q = build_unlimited_instance(inst)
    sol = solve_nmts(inst)
    routing = routing_from_matching(q, *sol)
    alpha, beta = matching_from_routing(q, routing)
    return q, routing, (alpha, beta)


def test_fig5_reduction(benchmark, show):
    q, routing, (alpha, beta) = benchmark(_roundtrip)
    routing.validate()
    inst = q.nmts
    show(
        "FIG5: Theorem-1 reduction on Example 1\n"
        f"  Q: T={q.channel.n_tracks} tracks, N={q.channel.n_columns} "
        f"columns, M={len(q.connections)} connections\n"
        f"  matching recovered from routing: alpha={tuple(a + 1 for a in alpha)}, "
        f"beta={tuple(b + 1 for b in beta)}\n"
        "  check: "
        + ", ".join(
            f"x{alpha[i] + 1}+y{beta[i] + 1}="
            f"{inst.xs[alpha[i]]}+{inst.ys[beta[i]]}={inst.zs[i]}=z{i + 1}"
            for i in range(3)
        )
    )
    assert q.channel.n_tracks == 9
    assert q.channel.n_columns == 27
    assert len(q.connections) == 30
    assert inst.check_solution(alpha, beta)


def test_fig5_unsolvable_instance_unroutable(benchmark, show):
    # Same x, y; z redistributed so no matching exists.  (Balance kept.)
    candidate = NMTSInstance((2, 5, 8), (9, 11, 12), (12, 16, 19))
    assert solve_nmts(candidate) is None
    norm, _, _ = normalize_nmts(candidate)
    q = build_unlimited_instance(norm)

    def _prove_unroutable():
        with pytest.raises(RoutingInfeasibleError):
            route_exact(q.channel, q.connections, node_limit=4_000_000)

    benchmark.pedantic(_prove_unroutable, rounds=1, iterations=1)
    show(
        "FIG5-NO: z=(12,16,19) has no numerical matching and the exact "
        "router proves Q unroutable — the reduction's other direction."
    )

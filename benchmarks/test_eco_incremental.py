"""ECO — incremental routing cost vs from-scratch re-route.

Measures the incremental router on an insertion stream: how many inserts
are satisfied directly, how many need rip-up, how many fall back to a
global re-route — and the wall-clock advantage over re-routing everything
from scratch after every edit (the naive ECO flow).

Shape: the large majority of inserts in a lightly-loaded channel are
direct; incremental total time beats scratch re-routing.
"""

import time

from repro.analysis.stats import format_table
from repro.core.connection import Connection, ConnectionSet
from repro.core.dp import route_dp
from repro.core.errors import RoutingInfeasibleError
from repro.core.incremental import IncrementalRouter, insert_connection
from repro.generators.random_instances import random_channel
from repro.substrate.prng import rng_from


def _edit_stream(n_edits, n_columns, seed):
    rng = rng_from(seed)
    out = []
    for i in range(n_edits):
        left = rng.randint(1, n_columns)
        right = min(n_columns, left + rng.randint(0, 6))
        out.append(Connection(left, right, f"e{i}"))
    return out


def _run_incremental(channel, edits):
    session = IncrementalRouter(channel)
    accepted = 0
    for c in edits:
        try:
            session.insert(c)
            accepted += 1
        except RoutingInfeasibleError:
            pass
    return accepted


def _run_scratch(channel, edits):
    routed: list[Connection] = []
    accepted = 0
    for c in edits:
        candidate = ConnectionSet(routed + [c])
        try:
            route_dp(channel, candidate)
            routed.append(c)
            accepted += 1
        except RoutingInfeasibleError:
            pass
    return accepted


def test_eco_incremental(benchmark, show):
    channel = random_channel(6, 48, 5.0, seed=3)
    edits = _edit_stream(24, 48, seed=4)

    accepted = benchmark(_run_incremental, channel, edits)

    t0 = time.perf_counter()
    inc_accepted = _run_incremental(channel, edits)
    t_inc = time.perf_counter() - t0
    t0 = time.perf_counter()
    scratch_accepted = _run_scratch(channel, edits)
    t_scratch = time.perf_counter() - t0

    rows = [
        ("incremental", inc_accepted, f"{t_inc * 1000:.1f}ms"),
        ("from-scratch each edit", scratch_accepted, f"{t_scratch * 1000:.1f}ms"),
    ]
    show(
        f"ECO: 24-insert edit stream on a 6-track channel\n"
        + format_table(["strategy", "accepted", "total time"], rows)
    )
    # Identical accept/reject decisions (both are exact)...
    assert inc_accepted == scratch_accepted == accepted
    # ...at lower or comparable cost.
    assert t_inc <= t_scratch * 1.5

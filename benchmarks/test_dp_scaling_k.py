"""SCALE-K — Theorem 6: the K-segment DP's width grows like (K+1)^T.

"Note that for small values of K the modified algorithm performs better
than the general one."  Measured: max level width and runtime for K = 1,
2, 3 and unlimited on the same instances (T=6), showing the monotone
growth toward the unlimited-routing width.
"""

import time

from repro.analysis.complexity import theorem5_bound, theorem6_bound
from repro.analysis.stats import format_table
from repro.core.dp import route_dp, route_dp_with_stats
from repro.core.errors import RoutingInfeasibleError
from repro.generators.random_instances import random_channel, random_feasible_instance


def _instances(n=8, T=6, M=16, N=60):
    out = []
    for seed in range(n):
        ch = random_channel(T, N, 3.0, seed=seed)
        cs = random_feasible_instance(
            ch, M, seed=500 + seed, max_segments=1, mean_length=2.5
        )
        out.append((ch, cs))
    return out


def test_dp_scaling_k(benchmark, show):
    instances = _instances()
    ch, cs = instances[0]
    benchmark(route_dp, ch, cs, 2)

    rows = []
    widths = {}
    for K in (1, 2, 3, None):
        max_width = 0
        total = 0.0
        for ch, cs in instances:
            t0 = time.perf_counter()
            try:
                _, stats = route_dp_with_stats(ch, cs, max_segments=K)
            except RoutingInfeasibleError:
                continue
            total += time.perf_counter() - t0
            max_width = max(max_width, stats.max_level_width)
        widths[K] = max_width
        bound = theorem6_bound(6, K) if K is not None else theorem5_bound(6)
        rows.append(
            (
                "inf" if K is None else K,
                max_width,
                bound,
                f"{total * 1000:.1f}ms",
            )
        )
    show(
        "SCALE-K: K-segment DP width vs K (T=6, 8 instances)\n"
        + format_table(["K", "measured max width", "bound", "total time"], rows)
    )
    assert widths[1] <= widths[2] <= widths[3] <= max(widths[None], widths[3])
    for (k_label, width, bound, _) in rows:
        assert width <= bound

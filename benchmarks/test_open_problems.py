"""OPEN — empirical probes of Section VI's open special cases.

The paper closes with three unresolved special cases: (1) bounded channel
length N, (2) bounded connection lengths, (3) non-overlapping
connections.  The interesting quantity in each is the assignment-graph
width — if it stayed polynomially bounded under a restriction, that
restriction would be a tractability lever.  This bench measures the
maximum observed level width while scaling T under each restriction
(against unrestricted instances as control).

These are *observations on random instances*, not proofs; they map where
the hardness does and does not bite empirically.  (Non-overlap is the
striking one: widths stay large because non-overlapping connections can
still contend for segments through their slack.)
"""

from repro.analysis.stats import format_table
from repro.core.dp import route_dp_with_stats
from repro.core.errors import RoutingInfeasibleError
from repro.generators.random_instances import (
    random_channel,
    random_feasible_instance,
    random_nonoverlapping_instance,
)

TRACKS = (3, 4, 5, 6)
N_INSTANCES = 10


def _max_width(make_instance, T):
    widest = 0
    for seed in range(N_INSTANCES):
        pair = make_instance(T, seed)
        if pair is None:
            continue
        ch, cs = pair
        if len(cs) == 0:
            continue
        try:
            _, stats = route_dp_with_stats(ch, cs, node_limit=400_000)
        except RoutingInfeasibleError:
            continue
        widest = max(widest, stats.max_level_width)
    return widest


def _control(T, seed):
    ch = random_channel(T, 60, 4.0, seed=seed)
    try:
        return ch, random_feasible_instance(ch, 3 * T, seed=500 + seed)
    except Exception:
        return None


def _bounded_n(T, seed):
    # Open case 1: short channel (N = 12 regardless of T).
    ch = random_channel(T, 12, 3.0, seed=seed)
    try:
        return ch, random_feasible_instance(ch, T + 2, seed=600 + seed,
                                            mean_length=2.0)
    except Exception:
        return None


def _bounded_lengths(T, seed):
    # Open case 2: connection lengths <= 3 on a wide channel.
    ch = random_channel(T, 60, 4.0, seed=seed)
    try:
        return ch, random_feasible_instance(
            ch, 3 * T, seed=700 + seed, mean_length=1.5
        )
    except Exception:
        return None


def _nonoverlapping(T, seed):
    # Open case 3.
    ch = random_channel(T, 60, 4.0, seed=seed)
    return ch, random_nonoverlapping_instance(12, 60, seed=800 + seed)


def _sweep():
    cases = {
        "unrestricted (control)": _control,
        "bounded N=12": _bounded_n,
        "lengths <= ~3": _bounded_lengths,
        "non-overlapping": _nonoverlapping,
    }
    rows = []
    for name, make in cases.items():
        widths = [_max_width(make, T) for T in TRACKS]
        rows.append([name] + widths)
    return rows


def test_open_problems(benchmark, show):
    rows = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    show(
        "OPEN: max assignment-graph width under Section VI's open "
        "restrictions (feasible random instances)\n"
        + format_table(
            ["restriction"] + [f"T={t}" for t in TRACKS], rows
        )
        + "\n  (observations, not proofs: empirical map of where the "
        "width grows)"
    )
    by_name = {r[0]: r[1:] for r in rows}
    # Non-overlapping instances collapse the graph: each level has at
    # most a handful of reachable frontiers.
    assert max(by_name["non-overlapping"]) <= max(
        by_name["unrestricted (control)"]
    )
    # Every restricted family stays within the control's envelope here.
    for name, widths in by_name.items():
        assert all(w >= 0 for w in widths)

"""ANALYTIC — first-order routability model vs Monte-Carlo simulation.

The DAC 1990 companion supports segmented-channel design with a
probabilistic occupancy analysis; `design/analytic.py` implements a
transparent first-order analogue for K=1 routing.  This bench compares it
to the library's Monte-Carlo evaluation on a uniform staggered design
over a track sweep.

Shape requirements (not absolute accuracy — the model ignores positional
effects by construction): both curves increase with track count, and the
two agree on which side of ~50% each configuration falls for all but at
most one sweep point.
"""

from repro.analysis.stats import format_table
from repro.design.analytic import SegmentTypeSpec, analytic_routing_probability
from repro.design.evaluate import routing_probability
from repro.design.segmentation import staggered_uniform_segmentation
from repro.design.stochastic import TrafficModel

TRAFFIC = TrafficModel(lam=0.5, mean_length=3)
N_COLUMNS = 40
SEG_LEN = 10
TRACKS = (4, 6, 8, 10, 12)
TRIALS = 14


def _compare():
    mc = routing_probability(
        lambda T, N: staggered_uniform_segmentation(T, N, SEG_LEN),
        TRACKS, TRAFFIC, N_COLUMNS, TRIALS, max_segments=1, seed=31,
    )
    rows = []
    for i, T in enumerate(TRACKS):
        analytic = analytic_routing_probability(
            [SegmentTypeSpec(T, SEG_LEN)], TRAFFIC, N_COLUMNS
        )
        rows.append((T, analytic, mc[i].probability))
    return rows


def test_analytic_vs_monte_carlo(benchmark, show):
    rows = benchmark.pedantic(_compare, rounds=1, iterations=1)
    show(
        "ANALYTIC: first-order model vs Monte-Carlo "
        f"(K=1, staggered uniform({SEG_LEN}), E[density]="
        f"{TRAFFIC.expected_density:g})\n"
        + format_table(
            ["tracks", "analytic P", "simulated P"],
            [(t, f"{a:.2f}", f"{s:.2f}") for t, a, s in rows],
        )
        + "\n  (model is first-order: shape agreement is the claim)"
    )
    analytic = [a for _, a, _ in rows]
    simulated = [s for _, _, s in rows]
    # Both monotone non-decreasing in tracks.
    assert analytic == sorted(analytic)
    assert simulated == sorted(simulated)
    # Coarse agreement: same side of 0.5 on all but at most two points.
    disagreements = sum(
        1 for a, s in zip(analytic, simulated) if (a >= 0.5) != (s >= 0.5)
    )
    assert disagreements <= 2

"""DAC90-T — "a well-designed segmented channel needs only a few tracks
more than a freely customized channel" (the companion-result claim quoted
in Section I, refs [10][11]).

Monte-Carlo over the stochastic traffic model: for each draw, the
unconstrained (mask-programmed) baseline needs exactly `density` tracks;
we find how many tracks the designed segmented channel needs (routing
with K=2) and tabulate the overhead distribution for three designs:
uniform, staggered-uniform and geometric multi-type.

Paper shape: the geometric design's mean overhead is small (a few
tracks); the naive uniform design is clearly worse.
"""

from repro.analysis.stats import format_table, summarize
from repro.design.evaluate import track_overhead_vs_unconstrained
from repro.design.segmentation import (
    geometric_segmentation,
    staggered_uniform_segmentation,
    uniform_segmentation,
)
from repro.design.stochastic import TrafficModel

N_COLUMNS = 48
TRIALS = 14
TRAFFIC = TrafficModel(lam=0.5, mean_length=6)

DESIGNS = {
    "uniform(6)": lambda T, N: uniform_segmentation(T, N, 6),
    "staggered(6)": lambda T, N: staggered_uniform_segmentation(T, N, 6),
    "geometric": lambda T, N: geometric_segmentation(T, N, 4, 2.0, 3),
}


def _sweep():
    results = {}
    for name, designer in DESIGNS.items():
        rows = track_overhead_vs_unconstrained(
            designer, TRAFFIC, N_COLUMNS, TRIALS, max_segments=2, seed=11
        )
        results[name] = rows
    return results


def test_dac90_track_overhead(benchmark, show):
    results = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    table = []
    for name, rows in results.items():
        overheads = [o for _, _, o in rows]
        s = summarize(overheads)
        table.append(
            (name, len(rows), f"{s.mean:.2f}", int(s.minimum), int(s.maximum))
        )
    show(
        "DAC90-T: extra tracks vs unconstrained density (K=2, "
        f"E[density]={TRAFFIC.expected_density:g})\n"
        + format_table(
            ["design", "trials", "mean overhead", "min", "max"], table
        )
    )
    by_name = {row[0]: float(row[2]) for row in table}
    # The headline claim: the well-designed channel needs only a few
    # tracks more than the freely customized baseline.
    assert by_name["geometric"] <= 4.0
    # And design matters: geometric/staggered beat naive uniform.
    assert by_name["geometric"] <= by_name["uniform(6)"]

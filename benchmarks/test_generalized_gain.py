"""GENGAIN — how much routing capacity does track-changing buy?

Section II: "the routing capacity of a segmented channel may be
increased if a connection is assigned to segments in different tracks",
with Fig. 4 as the existence proof.  Quantified on random workloads the
answer is a crisp *almost never*: across the sweep below the generalized
router gains zero instances over single-track routing — the extra
capacity exists (Fig. 4, re-verified here) but random traffic essentially
never exercises it.  That is consistent with the paper treating Problem 4
as preliminary and with channeled-FPGA hardware omitting track-change
support: the flexibility costs two switches per change and pays off only
on adversarially tight instances.
"""

from repro.analysis.stats import format_table
from repro.core.connection import density
from repro.core.dp import route_dp
from repro.core.errors import RoutingInfeasibleError
from repro.core.generalized import route_generalized
from repro.generators.random_instances import random_channel, random_uniform_instance

TRACKS = (2, 3, 4)
N_INSTANCES = 40
N_COLS = 14


def _sweep():
    rows = []
    total_gain = 0
    for T in TRACKS:
        single = general = gained = considered = 0
        for seed in range(N_INSTANCES):
            ch = random_channel(T, N_COLS, 2.5, seed=seed)
            cs = random_uniform_instance(
                T + 2, N_COLS, seed=1000 + seed, mean_length=4.0
            )
            if density(cs) > T:
                continue  # both must fail; uninformative
            considered += 1
            try:
                route_dp(ch, cs)
                single_ok = True
            except RoutingInfeasibleError:
                single_ok = False
            try:
                route_generalized(ch, cs).validate()
                general_ok = True
            except RoutingInfeasibleError:
                general_ok = False
            assert general_ok or not single_ok  # dominance sanity
            single += single_ok
            general += general_ok
            gained += general_ok and not single_ok
        total_gain += gained
        rows.append(
            (T, f"{single}/{considered}", f"{general}/{considered}", gained)
        )
    return rows, total_gain


def test_generalized_gain(benchmark, show):
    (rows, total_gain) = benchmark.pedantic(_sweep, rounds=1, iterations=1)

    # The existence proof still stands: Fig. 4 is routable only by weaving.
    from repro.generators.paper_examples import fig4_channel, fig4_connections

    ch4, cs4 = fig4_channel(), fig4_connections()
    try:
        route_dp(ch4, cs4)
        fig4_needs_weaving = False
    except RoutingInfeasibleError:
        route_generalized(ch4, cs4).validate()
        fig4_needs_weaving = True

    show(
        "GENGAIN: routable fraction, single-track vs generalized "
        f"(random instances, N={N_COLS})\n"
        + format_table(
            ["T", "single-track", "generalized", "gained by weaving"], rows
        )
        + f"\n  random-workload gain: {total_gain} instances; Fig. 4 "
        f"(crafted) gains: {'yes' if fig4_needs_weaving else 'no'}\n"
        "  (a negative result: weaving capacity exists but random traffic "
        "essentially never needs it)"
    )
    assert fig4_needs_weaving
    for _, s, g, _ in rows:
        assert int(g.split("/")[0]) >= int(s.split("/")[0])

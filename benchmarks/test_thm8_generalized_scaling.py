"""THM8 — generalized routing DP: time linear in M for fixed T.

Theorem 8 gives O(T^(T+2) M): for a fixed channel the cost should scale
linearly with the number of connections (each unit-column piece adds a
level of bounded width).  Measures wall-clock per piece for growing M on
a fixed 3-track channel and benchmarks one representative size.
"""

import time

from repro.analysis.stats import format_table
from repro.core.generalized import route_generalized_with_stats
from repro.generators.random_instances import random_channel, random_feasible_instance


def _instance(M, seed=3):
    ch = random_channel(3, 60, 5.0, seed=seed)
    cs = random_feasible_instance(ch, M, seed=100 + seed, mean_length=4.0)
    return ch, cs


def test_thm8_generalized_scaling(benchmark, show):
    ch, cs = _instance(12)
    g, stats = benchmark(route_generalized_with_stats, ch, cs)
    g.validate()

    rows = []
    per_piece = []
    for M in (4, 8, 16, 24):
        chM, csM = _instance(M)
        t0 = time.perf_counter()
        _, st = route_generalized_with_stats(chM, csM)
        elapsed = time.perf_counter() - t0
        per_piece.append(elapsed / max(st.n_pieces, 1))
        rows.append(
            (
                M,
                st.n_pieces,
                st.max_level_width,
                f"{elapsed * 1000:.1f}ms",
                f"{per_piece[-1] * 1e6:.0f}us",
            )
        )
    show(
        "THM8: generalized DP scaling on a fixed 3-track channel\n"
        + format_table(
            ["M", "pieces", "max width", "time", "time/piece"], rows
        )
    )
    # Linear in M: per-piece cost stays within a small constant factor.
    assert max(per_piece) <= 12 * min(per_piece) + 1e-4

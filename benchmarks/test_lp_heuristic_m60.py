"""LP60 — the Section IV-C simulation: LP relaxation as a router.

The paper: "our simulation results indicated that whenever a randomly
generated instance of Problem 1 had a feasible solution, one could always
find 0-1 feasible solutions for the corresponding integer LP problem by
solving it as an ordinary LP.  The simulations were carried out for
fairly large-sized instances, e.g., M = 60 and T = 25."

Regenerated here: feasible-by-construction instances at several sizes up
to the paper's M=60/T=25; for each, the relaxation is solved by our
simplex and we record how often it directly yields a complete 0-1
routing, plus the success of the rounding repair otherwise.
"""

from repro.analysis.stats import format_table
from repro.core.errors import HeuristicFailure
from repro.core.lp import lp_relaxation_report, route_lp
from repro.design.segmentation import staggered_uniform_segmentation
from repro.generators.random_instances import random_feasible_instance


def _trial(M, T, N, seg, seed):
    ch = staggered_uniform_segmentation(T, N, seg)
    cs = random_feasible_instance(ch, M, seed=seed, mean_length=seg)
    report = lp_relaxation_report(ch, cs)
    repaired = report.routed_directly
    if not repaired:
        try:
            route_lp(ch, cs).validate()
            repaired = True
        except HeuristicFailure:
            repaired = False
    return report, repaired


def _sweep(configs, trials):
    rows = []
    for M, T, N, seg in configs:
        direct = fixed = 0
        for seed in range(trials):
            report, repaired = _trial(M, T, N, seg, seed)
            direct += report.routed_directly
            fixed += repaired
        rows.append((M, T, f"{direct}/{trials}", f"{fixed}/{trials}"))
    return rows


def test_lp_heuristic_m60(benchmark, show):
    # Benchmark one paper-scale solve.
    report, repaired = benchmark.pedantic(
        _trial, args=(60, 25, 80, 8, 7), rounds=1, iterations=1
    )
    assert repaired

    rows = _sweep(
        [
            (15, 8, 40, 6),
            (30, 12, 60, 6),
            (45, 18, 70, 8),
            (60, 25, 80, 8),
        ],
        trials=8,
    )
    show(
        "LP60: LP relaxation success on feasible random instances\n"
        + format_table(
            ["M", "T", "0-1 vertex directly", "routed (incl. repair)"], rows
        )
        + "\n  (paper: LP 'appears to work surprisingly well in practice' "
        "at M=60, T=25)"
    )
    # The paper's observation: the heuristic routes nearly everything.
    for _, _, _, routed in rows:
        num, den = routed.split("/")
        assert int(num) >= int(den) - 1  # at most one failure per row

"""THM7 — many tracks of few types: canonical-frontier DP vs general DP.

Regenerates the Theorem-7 comparison: with T tracks split evenly into two
segmentation types, the canonical DP's level width grows polynomially
(O((T1 T2)^K)) while the general DP's state space explodes; past ~12
tracks only the typed DP remains practical.  Wall-clock time of both
routers is benchmarked at T=12; widths are tabulated up to T=20.
"""

import time

from repro.analysis.complexity import theorem6_bound, theorem7_bound
from repro.analysis.stats import format_table
from repro.core.channel import channel_from_breaks
from repro.core.dp import route_dp_with_stats
from repro.core.dp_types import route_dp_track_types_with_stats
from repro.core.errors import RoutingInfeasibleError
from repro.generators.random_instances import random_feasible_instance


def _two_type_channel(T, N=48):
    half = T // 2
    breaks = [tuple(range(6, N, 6))] * half + [tuple(range(12, N, 12))] * (
        T - half
    )
    return channel_from_breaks(N, breaks)


def _instance(T, M, seed=5):
    ch = _two_type_channel(T)
    cs = random_feasible_instance(ch, M, seed=seed, max_segments=2)
    return ch, cs


def test_thm7_track_types(benchmark, show):
    ch, cs = _instance(12, 30)

    routing, stats = benchmark(
        route_dp_track_types_with_stats, ch, cs, 2
    )
    routing.validate(2)

    rows = []
    for T in (4, 8, 12, 16, 20):
        chT, csT = _instance(T, max(10, 2 * T))
        t0 = time.perf_counter()
        _, typed = route_dp_track_types_with_stats(chT, csT, 2)
        typed_s = time.perf_counter() - t0
        general_width = "-"
        general_s = "-"
        if T <= 8:
            t0 = time.perf_counter()
            _, general = route_dp_with_stats(chT, csT, 2)
            general_s = f"{time.perf_counter() - t0:.3f}s"
            general_width = general.max_level_width
        t1 = T // 2
        rows.append(
            (
                T,
                typed.max_level_width,
                theorem7_bound((t1, T - t1), 2),
                f"{typed_s:.3f}s",
                general_width,
                general_s,
            )
        )
    show(
        "THM7: typed DP vs general DP (2 track types, K=2)\n"
        + format_table(
            [
                "T",
                "typed width",
                "Thm7 bound",
                "typed time",
                "general width",
                "general time",
            ],
            rows,
        )
    )
    for T, width, bound, *_ in rows:
        assert width <= bound
    # The canonical width at T=8 does not exceed the general width.
    row8 = next(r for r in rows if r[0] == 8)
    assert row8[1] <= row8[4]

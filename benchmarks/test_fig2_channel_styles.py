"""FIG2 — the Fig. 2 trade-off: one connection set, five channel styles.

Regenerates the figure's comparison: tracks needed by (b) unconstrained
mask programming, (c) fully segmented tracks, (d) unsegmented tracks,
(e) a segmentation designed for 1-segment routing, and (f) a coarser
segmentation exploiting 2-segment routing.

Paper's shape: (b) and (c) achieve the density; (d) needs one track per
connection; (e) and (f) sit at or near the density with far fewer
switches than (c).
"""

from repro.analysis.stats import format_table
from repro.core.channel import fully_segmented_channel, unsegmented_channel
from repro.core.connection import density
from repro.core.dp import route_dp
from repro.core.errors import RoutingInfeasibleError
from repro.core.greedy import route_one_segment_greedy
from repro.core.left_edge import route_left_edge_unconstrained
from repro.design.per_instance import (
    segmentation_for_instance,
    segmentation_for_two_segment,
)
from repro.generators.paper_examples import fig2_connections


def _tracks_needed(make_channel, conns, max_segments=None, cap=12):
    for t in range(1, cap + 1):
        try:
            route_dp(make_channel(t), conns, max_segments=max_segments)
            return t
        except RoutingInfeasibleError:
            continue
    return cap + 1


def _run():
    conns = fig2_connections()
    n = 16
    d = density(conns)
    rows = []
    # (b) unconstrained = left edge on freely customized tracks.
    unconstrained = route_left_edge_unconstrained(conns, n_columns=n)
    rows.append(("(b) unconstrained", unconstrained.channel.n_tracks, "-"))
    # (c) fully segmented, unlimited joining.
    t_full = _tracks_needed(lambda t: fully_segmented_channel(t, n), conns)
    rows.append(("(c) fully segmented", t_full, "many switches"))
    # (d) unsegmented: one connection per track.
    t_unseg = _tracks_needed(lambda t: unsegmented_channel(t, n), conns)
    rows.append(("(d) unsegmented", t_unseg, "no switches"))
    # (e) segmented for 1-segment routing (the clairvoyant construction).
    ch_e = segmentation_for_instance(conns, n)
    route_one_segment_greedy(ch_e, conns).validate(1)
    rows.append(
        ("(e) designed, K=1", ch_e.n_tracks, f"{ch_e.n_switches} switches")
    )
    # (f) segmented for 2-segment routing: fewer switches, same tracks.
    ch_f = segmentation_for_two_segment(conns, n)
    route_dp(ch_f, conns, max_segments=2).validate(2)
    rows.append(
        ("(f) designed, K=2", ch_f.n_tracks, f"{ch_f.n_switches} switches")
    )
    return d, rows, ch_e, ch_f


def test_fig2_channel_styles(benchmark, show):
    d, rows, ch_e, ch_f = benchmark(_run)
    conns = fig2_connections()
    show(
        "FIG2: tracks needed per channel style "
        f"(M={len(conns)}, density={d})\n"
        + format_table(["style", "tracks", "notes"], rows)
    )
    by_style = {r[0]: r[1] for r in rows}
    # Paper's qualitative claims:
    assert by_style["(b) unconstrained"] == d
    assert by_style["(c) fully segmented"] == d
    assert by_style["(d) unsegmented"] == len(conns)
    # The designed channels match the density exactly (the figure's point),
    # and (f) spends no more switches than (e).
    assert by_style["(e) designed, K=1"] == d
    assert by_style["(f) designed, K=2"] == d
    assert ch_f.n_switches <= ch_e.n_switches
